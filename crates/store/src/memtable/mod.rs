//! The memtable abstraction: one opaque, ordered `CurveIndex → V` map
//! that every engine layer (store, epoch/shard, snapshot, views)
//! compiles against.
//!
//! [`SfcMemtable`] wraps one of two backings selected at compile time:
//!
//! * default — the locality-aware [`bptree::BPlusTreeMap`] (large
//!   leaves, last-accessed-leaf hint, owned cursors, bulk load; see the
//!   [`bptree`] module docs for the design);
//! * `memtable-btreemap` feature — the original
//!   [`reference::BTreeBacking`] over `std::collections::BTreeMap`,
//!   kept as the differential baseline so the full engine test suite
//!   can be replayed against the old map with
//!   `cargo test --features sfc-store/memtable-btreemap`.
//!
//! The wrapper is deliberately opaque: no engine layer can name the
//! concrete map type (the abstraction leak this module replaces — the
//! old `Memtable` alias in `view.rs` exposed `BTreeMap` crate-wide), so
//! the backing can change without touching the seq protocol, the
//! capture path, or the query engines.

pub mod bptree;
pub mod reference;

use sfc_core::CurveIndex;

#[cfg(not(feature = "memtable-btreemap"))]
use bptree::{
    BPlusTreeMap as Backing, IntoIter as BackingIntoIter, Iter as BackingIter,
    RevIter as BackingRevIter,
};
#[cfg(feature = "memtable-btreemap")]
use reference::{
    BTreeBacking as Backing, IntoIter as BackingIntoIter, Iter as BackingIter,
    RevIter as BackingRevIter,
};

/// The engine's memtable: an ordered map from curve index to `V`, with
/// ordered/range/reverse iteration, an `O(n)` predicate drain
/// ([`retain`](Self::retain)), sorted bulk load, owned cursors, and
/// `O(1)` heap accounting. See the module docs for backing selection.
#[derive(Debug, Clone)]
pub struct SfcMemtable<V> {
    inner: Backing<V>,
}

impl<V> Default for SfcMemtable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> SfcMemtable<V> {
    /// An empty memtable with the default leaf capacity.
    pub fn new() -> Self {
        Self {
            inner: Backing::new(),
        }
    }

    /// An empty memtable with `leaf_cap`-entry leaves (ignored by the
    /// `BTreeMap` reference backing).
    pub fn with_leaf_capacity(leaf_cap: usize) -> Self {
        Self {
            inner: Backing::with_leaf_capacity(leaf_cap),
        }
    }

    /// Bulk-loads from strictly-increasing `(key, value)` pairs — the
    /// fastest build path, used by the shard capture extract.
    pub fn from_sorted(iter: impl IntoIterator<Item = (CurveIndex, V)>) -> Self {
        Self {
            inner: Backing::from_sorted(iter),
        }
    }

    /// Number of entries (tombstone values count — the memtable does not
    /// interpret `V`).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` iff the memtable holds no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: &CurveIndex) -> Option<&V> {
        self.inner.get(key)
    }

    /// `true` iff `key` is present.
    pub fn contains_key(&self, key: &CurveIndex) -> bool {
        self.inner.contains_key(key)
    }

    /// Inserts or replaces the value at `key`, returning the previous
    /// value if one existed.
    pub fn insert(&mut self, key: CurveIndex, val: V) -> Option<V> {
        self.inner.insert(key, val)
    }

    /// Removes the entry at `key`, returning its value.
    pub fn remove(&mut self, key: &CurveIndex) -> Option<V> {
        self.inner.remove(key)
    }

    /// Keeps only the entries `f` approves — one ordered walk with a
    /// predicate call per entry. This is the flush drain primitive: the
    /// epoch layer drains exactly `seq < high_water` with it.
    pub fn retain(&mut self, f: impl FnMut(CurveIndex, &V) -> bool) {
        self.inner.retain(f);
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Bytes of heap memory held by the memtable structure, in `O(1)`.
    /// Exact node-slab accounting on the B+tree backing; a per-entry
    /// estimate on the reference backing.
    pub fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }

    /// Ascending iteration over all entries as `(key, &value)`.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter(self.inner.iter())
    }

    /// Ascending iteration over the inclusive key span `[lo, hi]`
    /// (empty when `lo > hi`).
    pub fn range_iter(&self, lo: CurveIndex, hi: CurveIndex) -> Iter<'_, V> {
        Iter(self.inner.range_iter(lo, hi))
    }

    /// Ascending iteration from `key` (inclusive) to the end.
    pub fn iter_from(&self, key: CurveIndex) -> Iter<'_, V> {
        Iter(self.inner.iter_from(key))
    }

    /// Descending iteration over keys strictly below `key`.
    pub fn iter_rev_below(&self, key: CurveIndex) -> RevIter<'_, V> {
        RevIter(self.inner.iter_rev_below(key))
    }

    /// An owned cursor at the smallest key, or `None` on an empty
    /// memtable.
    pub fn cursor_first(&self) -> Option<Cursor> {
        #[cfg(not(feature = "memtable-btreemap"))]
        {
            self.inner.cursor_first().map(Cursor)
        }
        #[cfg(feature = "memtable-btreemap")]
        {
            self.inner.iter().next().map(|(k, _)| Cursor(k))
        }
    }

    /// An owned cursor at the first entry with key `>= key`, or `None`
    /// if no such entry exists.
    pub fn cursor_seek(&self, key: CurveIndex) -> Option<Cursor> {
        #[cfg(not(feature = "memtable-btreemap"))]
        {
            self.inner.cursor_seek(key).map(Cursor)
        }
        #[cfg(feature = "memtable-btreemap")]
        {
            self.inner.iter_from(key).next().map(|(k, _)| Cursor(k))
        }
    }
}

impl<V> IntoIterator for SfcMemtable<V> {
    type Item = (CurveIndex, V);
    type IntoIter = IntoIter<V>;

    fn into_iter(self) -> Self::IntoIter {
        IntoIter(self.inner.into_iter())
    }
}

/// Ascending borrowed iterator over an [`SfcMemtable`], yielding
/// `(key, &value)`.
#[derive(Debug)]
pub struct Iter<'a, V>(BackingIter<'a, V>);

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (CurveIndex, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next()
    }
}

/// Descending borrowed iterator over an [`SfcMemtable`], yielding
/// `(key, &value)`.
#[derive(Debug)]
pub struct RevIter<'a, V>(BackingRevIter<'a, V>);

impl<'a, V> Iterator for RevIter<'a, V> {
    type Item = (CurveIndex, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next()
    }
}

/// Owned ascending iterator over an [`SfcMemtable`] — the ordered flush
/// drain path.
#[derive(Debug)]
pub struct IntoIter<V>(BackingIntoIter<V>);

impl<V> Iterator for IntoIter<V> {
    type Item = (CurveIndex, V);

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next()
    }
}

/// An owned position in an [`SfcMemtable`], valid across mutation: it
/// borrows nothing and revalidates on every access. After the entry it
/// points at is removed, [`value`](Self::value) returns `None` while
/// [`next`](Self::next)/[`prev`](Self::prev) continue the ordered walk
/// from the remembered key. On the B+tree backing revalidation is
/// `O(1)` when the entry has not moved; the reference backing re-seeks
/// by key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor(
    #[cfg(not(feature = "memtable-btreemap"))] bptree::Cursor,
    #[cfg(feature = "memtable-btreemap")] CurveIndex,
);

impl Cursor {
    /// The key this cursor was positioned at.
    pub fn key(&self) -> CurveIndex {
        #[cfg(not(feature = "memtable-btreemap"))]
        {
            self.0.key()
        }
        #[cfg(feature = "memtable-btreemap")]
        {
            self.0
        }
    }

    /// The value currently stored at the cursor's key, or `None` if the
    /// key has been removed since.
    pub fn value<'a, V>(&self, mem: &'a SfcMemtable<V>) -> Option<&'a V> {
        #[cfg(not(feature = "memtable-btreemap"))]
        {
            self.0.value(&mem.inner)
        }
        #[cfg(feature = "memtable-btreemap")]
        {
            mem.inner.get(&self.0)
        }
    }

    /// A cursor at the smallest key strictly greater than this one, or
    /// `None` at the end — whether or not the current key still exists.
    pub fn next<V>(&self, mem: &SfcMemtable<V>) -> Option<Cursor> {
        #[cfg(not(feature = "memtable-btreemap"))]
        {
            self.0.next(&mem.inner).map(Cursor)
        }
        #[cfg(feature = "memtable-btreemap")]
        {
            mem.cursor_seek(self.0.checked_add(1)?)
        }
    }

    /// A cursor at the largest key strictly smaller than this one, or
    /// `None` at the start — whether or not the current key still
    /// exists.
    pub fn prev<V>(&self, mem: &SfcMemtable<V>) -> Option<Cursor> {
        #[cfg(not(feature = "memtable-btreemap"))]
        {
            self.0.prev(&mem.inner).map(Cursor)
        }
        #[cfg(feature = "memtable-btreemap")]
        {
            mem.inner
                .iter_rev_below(self.0)
                .next()
                .map(|(k, _)| Cursor(k))
        }
    }
}
