//! The locality-aware B+tree backing the memtable.
//!
//! A safe-Rust B+tree keyed by [`CurveIndex`], designed for the one
//! workload `std::collections::BTreeMap` cannot exploit: curve-local
//! writes, where consecutive upserts land on adjacent keys (the access
//! pattern the paper's space-filling-curve ordering produces by
//! construction). Three design points, following the sweep-bptree idiom
//! (SNIPPETS.md §1–2):
//!
//! * **Large leaves** ([`DEFAULT_LEAF_CAPACITY`] entries, configurable
//!   per tree). One leaf holds a whole curve neighborhood contiguously,
//!   so a local write burst touches one cache-resident key array instead
//!   of a pointer chase per operation.
//! * **A last-accessed-leaf hint.** Every seek records the leaf it
//!   landed in (a relaxed atomic, so shared readers can update it too).
//!   The next operation first checks whether its key falls inside the
//!   hinted leaf's key range — a bounds check plus one binary search —
//!   and only descends from the root on a miss. Curve-local streams hit
//!   the hint almost always, making ordered/local access near-O(1).
//! * **Owned cursors that survive mutation.** A [`Cursor`] stores
//!   `(key, leaf, slot)` and owns no borrow of the tree, so it stays
//!   usable across arbitrary inserts and removes: each access
//!   revalidates the cached position in O(1) (leaf still holds this key
//!   at this slot) and re-seeks by key only when mutation moved it.
//!   [`Cursor::value`] reports `None` once the key is removed, while
//!   [`Cursor::next`]/[`Cursor::prev`] keep walking from the key's
//!   position, exactly the semantics the exemplar documents.
//!
//! Nodes live in index-addressed slabs (`Vec<Leaf>` / `Vec<Inner>`) with
//! free lists, which keeps the whole structure in safe Rust (the crate
//! forbids `unsafe`): node references are `u32` ids, not pointers, so
//! there is no aliasing to argue about. Leaves are doubly linked for
//! ordered iteration in both directions; inner nodes store the minimum
//! key of each child subtree. Removal frees empty nodes but does not
//! rebalance underfull ones — a memtable is drained wholesale every few
//! thousand writes, so [`retain`](BPlusTreeMap::retain) (a linked-leaf
//! walk that compacts survivors in place and rebuilds the inner levels
//! bulk-load-style) restores density far more often than gradual
//! deletion could degrade it.

use std::sync::atomic::{AtomicU32, Ordering};

use sfc_core::CurveIndex;

/// Entries per leaf unless overridden with
/// [`BPlusTreeMap::with_leaf_capacity`]. Large enough that a leaf spans a
/// whole curve neighborhood (64 entries ≈ 3 KiB of keys+values for the
/// store's tuple payloads), small enough that the `Vec::insert` shift on
/// a mid-leaf write stays a fraction of a cache-miss-laden root descent.
pub const DEFAULT_LEAF_CAPACITY: usize = 64;

/// Children per inner node before it splits.
const INNER_CAP: usize = 32;

/// Slab id sentinel for "no node".
const NIL: u32 = u32::MAX;

/// One leaf: parallel sorted key/value arrays plus sibling links.
#[derive(Debug, Clone)]
struct Leaf<V> {
    keys: Vec<CurveIndex>,
    vals: Vec<V>,
    prev: u32,
    next: u32,
}

impl<V> Leaf<V> {
    fn with_capacity(cap: usize) -> Self {
        Self {
            keys: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
            prev: NIL,
            next: NIL,
        }
    }
}

/// One inner node: `mins[i]` is the smallest key in subtree
/// `children[i]`; both arrays are parallel and sorted by `mins`.
#[derive(Debug, Clone, Default)]
struct Inner {
    mins: Vec<CurveIndex>,
    children: Vec<u32>,
}

impl Inner {
    fn with_capacity(cap: usize) -> Self {
        Self {
            mins: Vec::with_capacity(cap + 1),
            children: Vec::with_capacity(cap + 1),
        }
    }
}

/// The child of `mins` covering `key`: the last subtree whose minimum is
/// `<= key` (clamped to the first — keys below the tree minimum descend
/// leftmost).
fn child_index(mins: &[CurveIndex], key: CurveIndex) -> usize {
    mins.partition_point(|&m| m <= key).saturating_sub(1)
}

/// Deepest root-to-leaf path the slab can represent: height only grows
/// on a root split, which needs `INNER_CAP` children each at least a
/// half-full split product, so 32 levels would take well over `2^64`
/// entries.
const MAX_HEIGHT: usize = 32;

/// A root-to-leaf descent path of `(inner id, child index)` pairs,
/// stack-allocated so the descent write paths (insert miss, remove)
/// never heap-allocate per operation.
struct DescentPath {
    nodes: [(u32, usize); MAX_HEIGHT],
    len: usize,
}

impl DescentPath {
    fn new() -> Self {
        Self {
            nodes: [(NIL, 0); MAX_HEIGHT],
            len: 0,
        }
    }

    fn push(&mut self, id: u32, ci: usize) {
        self.nodes[self.len] = (id, ci);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<(u32, usize)> {
        let i = self.len.checked_sub(1)?;
        self.len = i;
        Some(self.nodes[i])
    }

    fn as_slice(&self) -> &[(u32, usize)] {
        &self.nodes[..self.len]
    }
}

/// A locality-aware B+tree map from [`CurveIndex`] to `V` — see the
/// module docs for the design. All ordered iteration is ascending by key
/// unless stated otherwise.
#[derive(Debug)]
pub struct BPlusTreeMap<V> {
    leaves: Vec<Leaf<V>>,
    inners: Vec<Inner>,
    free_leaves: Vec<u32>,
    free_inners: Vec<u32>,
    /// Root node id: a leaf id when `height == 0`, else an inner id.
    /// `NIL` for the empty tree.
    root: u32,
    /// Inner levels above the leaves (0 = the root is a leaf).
    height: usize,
    /// Leftmost leaf, head of the sibling chain.
    head: u32,
    len: usize,
    leaf_cap: usize,
    /// Last-accessed leaf, checked before any root descent. Relaxed
    /// atomic so `&self` readers can refresh it; `NIL` = no hint.
    hint: AtomicU32,
}

impl<V> Default for BPlusTreeMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> Clone for BPlusTreeMap<V> {
    fn clone(&self) -> Self {
        Self {
            leaves: self.leaves.clone(),
            inners: self.inners.clone(),
            free_leaves: self.free_leaves.clone(),
            free_inners: self.free_inners.clone(),
            root: self.root,
            height: self.height,
            head: self.head,
            len: self.len,
            leaf_cap: self.leaf_cap,
            hint: AtomicU32::new(NIL),
        }
    }
}

impl<V> BPlusTreeMap<V> {
    /// An empty tree with [`DEFAULT_LEAF_CAPACITY`]-entry leaves.
    pub fn new() -> Self {
        Self::with_leaf_capacity(DEFAULT_LEAF_CAPACITY)
    }

    /// An empty tree whose leaves hold up to `leaf_cap` entries
    /// (clamped to at least 4).
    pub fn with_leaf_capacity(leaf_cap: usize) -> Self {
        Self {
            leaves: Vec::new(),
            inners: Vec::new(),
            free_leaves: Vec::new(),
            free_inners: Vec::new(),
            root: NIL,
            height: 0,
            head: NIL,
            len: 0,
            leaf_cap: leaf_cap.max(4),
            hint: AtomicU32::new(NIL),
        }
    }

    /// Bulk-loads a tree from strictly-increasing `(key, value)` pairs —
    /// the fastest build path: leaves fill left to right with zero
    /// comparisons and the inner levels are assembled bottom-up in one
    /// pass per level.
    pub fn from_sorted(iter: impl IntoIterator<Item = (CurveIndex, V)>) -> Self {
        Self::from_sorted_with_capacity(DEFAULT_LEAF_CAPACITY, iter)
    }

    /// [`from_sorted`](Self::from_sorted) with an explicit leaf capacity.
    pub fn from_sorted_with_capacity(
        leaf_cap: usize,
        iter: impl IntoIterator<Item = (CurveIndex, V)>,
    ) -> Self {
        let mut tree = Self::with_leaf_capacity(leaf_cap);
        let mut level: Vec<(CurveIndex, u32)> = Vec::new();
        let mut cur: u32 = NIL;
        let mut last_key: Option<CurveIndex> = None;
        for (key, val) in iter {
            debug_assert!(
                last_key.is_none_or(|prev| prev < key),
                "from_sorted keys must be strictly increasing"
            );
            last_key = Some(key);
            if cur == NIL || tree.leaves[cur as usize].keys.len() == tree.leaf_cap {
                let id = tree.alloc_leaf();
                if cur != NIL {
                    tree.leaves[cur as usize].next = id;
                    tree.leaves[id as usize].prev = cur;
                }
                cur = id;
                level.push((key, id));
            }
            let leaf = &mut tree.leaves[cur as usize];
            leaf.keys.push(key);
            leaf.vals.push(val);
            tree.len += 1;
        }
        tree.head = level.first().map_or(NIL, |&(_, id)| id);
        tree.rebuild_inners(level);
        tree
    }

    /// Number of entries (live keys, tombstone values included — the
    /// tree does not interpret `V`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured leaf capacity.
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_cap
    }

    /// Bytes of heap memory held by the node slabs. O(1): every live or
    /// free leaf keeps its fixed `leaf_cap`-entry allocation (slabs
    /// recycle nodes instead of freeing buffers), so the figure is a
    /// per-node constant times the slab lengths.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let leaf_bytes =
            size_of::<Leaf<V>>() + self.leaf_cap * (size_of::<CurveIndex>() + size_of::<V>());
        let inner_bytes =
            size_of::<Inner>() + (INNER_CAP + 1) * (size_of::<CurveIndex>() + size_of::<u32>());
        self.leaves.len() * leaf_bytes
            + self.inners.len() * inner_bytes
            + (self.free_leaves.capacity() + self.free_inners.capacity()) * size_of::<u32>()
    }

    /// Removes every entry, keeping no allocations.
    pub fn clear(&mut self) {
        self.leaves.clear();
        self.inners.clear();
        self.free_leaves.clear();
        self.free_inners.clear();
        self.root = NIL;
        self.height = 0;
        self.head = NIL;
        self.len = 0;
        self.hint.store(NIL, Ordering::Relaxed);
    }

    fn alloc_leaf(&mut self) -> u32 {
        match self.free_leaves.pop() {
            Some(id) => id,
            None => {
                self.leaves.push(Leaf::with_capacity(self.leaf_cap));
                (self.leaves.len() - 1) as u32
            }
        }
    }

    /// Returns a leaf to the free list. The cleared key array is what
    /// keeps stale cursors and hints honest: revalidation against a
    /// freed leaf finds no key and falls back to a fresh seek.
    fn free_leaf(&mut self, id: u32) {
        let leaf = &mut self.leaves[id as usize];
        leaf.keys.clear();
        leaf.vals.clear();
        leaf.prev = NIL;
        leaf.next = NIL;
        self.free_leaves.push(id);
        if self.hint.load(Ordering::Relaxed) == id {
            self.hint.store(NIL, Ordering::Relaxed);
        }
    }

    fn alloc_inner(&mut self) -> u32 {
        match self.free_inners.pop() {
            Some(id) => id,
            None => {
                self.inners.push(Inner::with_capacity(INNER_CAP));
                (self.inners.len() - 1) as u32
            }
        }
    }

    fn free_inner(&mut self, id: u32) {
        let inner = &mut self.inners[id as usize];
        inner.mins.clear();
        inner.children.clear();
        self.free_inners.push(id);
    }

    fn two_leaves(&mut self, a: u32, b: u32) -> (&mut Leaf<V>, &mut Leaf<V>) {
        debug_assert_ne!(a, b);
        let (a, b) = (a as usize, b as usize);
        if a < b {
            let (lo, hi) = self.leaves.split_at_mut(b);
            (&mut lo[a], &mut hi[0])
        } else {
            let (lo, hi) = self.leaves.split_at_mut(a);
            (&mut hi[0], &mut lo[b])
        }
    }

    fn two_inners(&mut self, a: u32, b: u32) -> (&mut Inner, &mut Inner) {
        debug_assert_ne!(a, b);
        let (a, b) = (a as usize, b as usize);
        if a < b {
            let (lo, hi) = self.inners.split_at_mut(b);
            (&mut lo[a], &mut hi[0])
        } else {
            let (lo, hi) = self.inners.split_at_mut(a);
            (&mut hi[0], &mut lo[b])
        }
    }

    /// The hinted leaf, if `key` provably belongs to it: `key` is at or
    /// after the leaf's first key and before the next leaf's first key
    /// (or the leaf is rightmost). The containment test needs only the
    /// hinted leaf's bounds plus at most one sibling read — no descent.
    fn hint_leaf(&self, key: CurveIndex) -> Option<u32> {
        let h = self.hint.load(Ordering::Relaxed);
        let leaf = self.leaves.get(h as usize)?;
        let first = *leaf.keys.first()?;
        if key < first {
            return None;
        }
        if key <= *leaf.keys.last()? {
            return Some(h);
        }
        if leaf.next == NIL || self.leaves[leaf.next as usize].keys.first().copied()? > key {
            return Some(h);
        }
        None
    }

    /// The leaf whose key range covers `key` (hint first, root descent on
    /// a miss), refreshing the hint. `NIL` on an empty tree. For keys
    /// below the tree minimum this is the leftmost leaf; above the
    /// maximum, the rightmost.
    fn seek_leaf(&self, key: CurveIndex) -> u32 {
        if self.root == NIL {
            return NIL;
        }
        if let Some(h) = self.hint_leaf(key) {
            return h;
        }
        let mut node = self.root;
        for _ in 0..self.height {
            let inner = &self.inners[node as usize];
            node = inner.children[child_index(&inner.mins, key)];
        }
        self.hint.store(node, Ordering::Relaxed);
        node
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: &CurveIndex) -> Option<&V> {
        let id = self.seek_leaf(*key);
        let leaf = self.leaves.get(id as usize)?;
        let i = leaf.keys.binary_search(key).ok()?;
        Some(&leaf.vals[i])
    }

    /// `true` iff `key` is present.
    pub fn contains_key(&self, key: &CurveIndex) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or replaces the value at `key`, returning the previous
    /// value if one existed. Curve-local streams resolve through the
    /// leaf hint without touching the root.
    pub fn insert(&mut self, key: CurveIndex, val: V) -> Option<V> {
        if let Some(h) = self.hint_leaf(key) {
            let cap = self.leaf_cap;
            let leaf = &mut self.leaves[h as usize];
            match leaf.keys.binary_search(&key) {
                Ok(i) => return Some(std::mem::replace(&mut leaf.vals[i], val)),
                // `i > 0` keeps the leaf minimum (and so every ancestor
                // min) unchanged; `i == 0` means key == first is absent,
                // which the hint precondition `key >= first` rules out
                // except for exact-first replacement handled above.
                Err(i) if i > 0 && leaf.keys.len() < cap => {
                    leaf.keys.insert(i, key);
                    leaf.vals.insert(i, val);
                    self.len += 1;
                    return None;
                }
                Err(_) => {}
            }
        }
        self.insert_descend(key, val)
    }

    /// Insert via root descent: records the path for min-key updates and
    /// split propagation.
    fn insert_descend(&mut self, key: CurveIndex, val: V) -> Option<V> {
        if self.root == NIL {
            let id = self.alloc_leaf();
            let leaf = &mut self.leaves[id as usize];
            leaf.keys.push(key);
            leaf.vals.push(val);
            self.root = id;
            self.head = id;
            self.height = 0;
            self.len = 1;
            self.hint.store(id, Ordering::Relaxed);
            return None;
        }
        let mut path = DescentPath::new();
        let mut node = self.root;
        for _ in 0..self.height {
            let inner = &self.inners[node as usize];
            let ci = child_index(&inner.mins, key);
            path.push(node, ci);
            node = inner.children[ci];
        }
        let leaf_id = node;
        let i = match self.leaves[leaf_id as usize].keys.binary_search(&key) {
            Ok(i) => {
                self.hint.store(leaf_id, Ordering::Relaxed);
                return Some(std::mem::replace(
                    &mut self.leaves[leaf_id as usize].vals[i],
                    val,
                ));
            }
            Err(i) => i,
        };
        self.len += 1;
        if self.leaves[leaf_id as usize].keys.len() < self.leaf_cap {
            let leaf = &mut self.leaves[leaf_id as usize];
            leaf.keys.insert(i, key);
            leaf.vals.insert(i, val);
            if i == 0 {
                self.propagate_min(path.as_slice(), key);
            }
            self.hint.store(leaf_id, Ordering::Relaxed);
            return None;
        }
        // Split: upper half moves to a fresh right sibling, the new
        // entry lands on its side, and (right-min, right-id) bubbles up.
        let mid = self.leaf_cap / 2;
        let right_id = self.alloc_leaf();
        {
            let (left, right) = self.two_leaves(leaf_id, right_id);
            right.keys.extend(left.keys.drain(mid..));
            right.vals.extend(left.vals.drain(mid..));
            right.next = left.next;
            right.prev = leaf_id;
            left.next = right_id;
        }
        let after = self.leaves[right_id as usize].next;
        if after != NIL {
            self.leaves[after as usize].prev = right_id;
        }
        let right_first = self.leaves[right_id as usize].keys[0];
        let target = if key < right_first {
            let leaf = &mut self.leaves[leaf_id as usize];
            leaf.keys.insert(i, key);
            leaf.vals.insert(i, val);
            if i == 0 {
                self.propagate_min(path.as_slice(), key);
            }
            leaf_id
        } else {
            let leaf = &mut self.leaves[right_id as usize];
            leaf.keys.insert(i - mid, key);
            leaf.vals.insert(i - mid, val);
            right_id
        };
        self.hint.store(target, Ordering::Relaxed);
        let right_min = self.leaves[right_id as usize].keys[0];
        self.insert_into_parents(path, right_min, right_id);
        None
    }

    /// Rewrites the stored child minimum along `path` after the leaf's
    /// first key changed to `new_min`; stops at the first ancestor whose
    /// own minimum is unaffected.
    fn propagate_min(&mut self, path: &[(u32, usize)], new_min: CurveIndex) {
        for &(inner_id, ci) in path.iter().rev() {
            self.inners[inner_id as usize].mins[ci] = new_min;
            if ci != 0 {
                break;
            }
        }
    }

    /// Inserts a split-off child `(new_min, new_child)` into the parents
    /// along `path`, splitting inner nodes (and growing a new root) as
    /// needed.
    fn insert_into_parents(&mut self, mut path: DescentPath, min: CurveIndex, child: u32) {
        let mut new_min = min;
        let mut new_child = child;
        loop {
            let Some((inner_id, ci)) = path.pop() else {
                // The split reached the top: grow a new root over the
                // old one and the propagated sibling.
                let old_root = self.root;
                let old_min = if self.height == 0 {
                    self.leaves[old_root as usize].keys[0]
                } else {
                    self.inners[old_root as usize].mins[0]
                };
                let id = self.alloc_inner();
                let root = &mut self.inners[id as usize];
                root.mins.extend([old_min, new_min]);
                root.children.extend([old_root, new_child]);
                self.root = id;
                self.height += 1;
                return;
            };
            let inner = &mut self.inners[inner_id as usize];
            inner.mins.insert(ci + 1, new_min);
            inner.children.insert(ci + 1, new_child);
            if inner.children.len() <= INNER_CAP {
                return;
            }
            let mid = inner.children.len() / 2;
            let new_id = self.alloc_inner();
            let (left, right) = self.two_inners(inner_id, new_id);
            right.mins.extend(left.mins.drain(mid..));
            right.children.extend(left.children.drain(mid..));
            new_min = self.inners[new_id as usize].mins[0];
            new_child = new_id;
        }
    }

    /// Removes the entry at `key`, returning its value. Empty leaves are
    /// unlinked and freed (cascading up through emptied inner nodes);
    /// underfull survivors are left alone — `retain` and the drain paths
    /// restore density wholesale.
    pub fn remove(&mut self, key: &CurveIndex) -> Option<V> {
        if self.root == NIL {
            return None;
        }
        let mut path = DescentPath::new();
        let mut node = self.root;
        for _ in 0..self.height {
            let inner = &self.inners[node as usize];
            let ci = child_index(&inner.mins, *key);
            path.push(node, ci);
            node = inner.children[ci];
        }
        let leaf_id = node;
        let leaf = &mut self.leaves[leaf_id as usize];
        let i = leaf.keys.binary_search(key).ok()?;
        leaf.keys.remove(i);
        let val = leaf.vals.remove(i);
        self.len -= 1;
        if self.leaves[leaf_id as usize].keys.is_empty() {
            self.unlink_empty_leaf(leaf_id, path.as_slice());
        } else if i == 0 {
            let new_min = self.leaves[leaf_id as usize].keys[0];
            self.propagate_min(path.as_slice(), new_min);
        }
        Some(val)
    }

    /// Detaches a just-emptied leaf from the sibling chain and from its
    /// ancestors, freeing inner nodes that empty out along the way and
    /// collapsing a single-child root chain.
    fn unlink_empty_leaf(&mut self, leaf_id: u32, path: &[(u32, usize)]) {
        let (prev, next) = {
            let leaf = &self.leaves[leaf_id as usize];
            (leaf.prev, leaf.next)
        };
        if prev != NIL {
            self.leaves[prev as usize].next = next;
        }
        if next != NIL {
            self.leaves[next as usize].prev = prev;
        }
        if self.head == leaf_id {
            self.head = next;
        }
        self.free_leaf(leaf_id);
        let mut gone = true;
        for (depth, &(inner_id, ci)) in path.iter().enumerate().rev() {
            if !gone {
                break;
            }
            let inner = &mut self.inners[inner_id as usize];
            inner.mins.remove(ci);
            inner.children.remove(ci);
            if inner.children.is_empty() {
                self.free_inner(inner_id);
                continue;
            }
            gone = false;
            if ci == 0 {
                let new_min = self.inners[inner_id as usize].mins[0];
                self.propagate_min(&path[..depth], new_min);
            }
        }
        if gone {
            // The removed leaf was the last entry of the whole tree.
            self.root = NIL;
            self.height = 0;
            self.head = NIL;
            return;
        }
        while self.height > 0 {
            let root = &self.inners[self.root as usize];
            if root.children.len() > 1 {
                break;
            }
            let only = root.children[0];
            self.free_inner(self.root);
            self.root = only;
            self.height -= 1;
        }
    }

    /// Keeps only the entries `f` approves, in one ordered cursor walk
    /// down the leaf chain: each leaf compacts its survivors in place
    /// (no per-entry tree surgery, no clone), emptied leaves are freed,
    /// and the inner levels are rebuilt bottom-up from the surviving
    /// leaves exactly like a bulk load. This is the memtable drain
    /// primitive: `O(n)` with one predicate call per entry.
    pub fn retain(&mut self, mut f: impl FnMut(CurveIndex, &V) -> bool) {
        let mut level: Vec<(CurveIndex, u32)> = Vec::new();
        let mut emptied: Vec<u32> = Vec::new();
        let mut prev_kept: u32 = NIL;
        let mut kept = 0usize;
        let mut cur = self.head;
        while cur != NIL {
            let next = self.leaves[cur as usize].next;
            let leaf = &mut self.leaves[cur as usize];
            let mut w = 0usize;
            for r in 0..leaf.keys.len() {
                if f(leaf.keys[r], &leaf.vals[r]) {
                    leaf.keys.swap(w, r);
                    leaf.vals.swap(w, r);
                    w += 1;
                }
            }
            leaf.keys.truncate(w);
            leaf.vals.truncate(w);
            if w == 0 {
                emptied.push(cur);
            } else {
                leaf.prev = prev_kept;
                leaf.next = NIL;
                if prev_kept != NIL {
                    self.leaves[prev_kept as usize].next = cur;
                }
                prev_kept = cur;
                level.push((self.leaves[cur as usize].keys[0], cur));
                kept += w;
            }
            cur = next;
        }
        for id in emptied {
            self.free_leaf(id);
        }
        // The survivors form a fresh bottom level; rebuild the inner
        // levels over them and drop the old ones wholesale.
        let live_inners = self.inners.len() - self.free_inners.len();
        for id in 0..live_inners as u32 {
            // Recycle every inner: cheaper than tracking which of them
            // the old structure still referenced.
            if !self.free_inners.contains(&id) {
                self.free_inner(id);
            }
        }
        self.len = kept;
        self.head = level.first().map_or(NIL, |&(_, id)| id);
        self.hint.store(NIL, Ordering::Relaxed);
        self.rebuild_inners(level);
    }

    /// Builds the inner levels over a bottom level of `(min, node-id)`
    /// pairs, [`INNER_CAP`] children at a time, and installs the root.
    fn rebuild_inners(&mut self, mut level: Vec<(CurveIndex, u32)>) {
        self.height = 0;
        let Some(&(_, first)) = level.first() else {
            self.root = NIL;
            return;
        };
        if level.len() == 1 {
            self.root = first;
            return;
        }
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(INNER_CAP));
            for chunk in level.chunks(INNER_CAP) {
                let id = self.alloc_inner();
                let inner = &mut self.inners[id as usize];
                inner.mins.extend(chunk.iter().map(|&(m, _)| m));
                inner.children.extend(chunk.iter().map(|&(_, c)| c));
                next.push((chunk[0].0, id));
            }
            level = next;
            self.height += 1;
        }
        self.root = level[0].1;
    }

    /// Ascending iteration over all entries.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            tree: self,
            leaf: self.head,
            slot: 0,
            hi: CurveIndex::MAX,
        }
    }

    /// Ascending iteration over the inclusive key span `[lo, hi]`.
    pub fn range_iter(&self, lo: CurveIndex, hi: CurveIndex) -> Iter<'_, V> {
        if lo > hi || self.root == NIL {
            return Iter {
                tree: self,
                leaf: NIL,
                slot: 0,
                hi,
            };
        }
        let leaf = self.seek_leaf(lo);
        let slot = self.leaves[leaf as usize].keys.partition_point(|&k| k < lo);
        Iter {
            tree: self,
            leaf,
            slot,
            hi,
        }
    }

    /// Ascending iteration from `key` (inclusive) to the end.
    pub fn iter_from(&self, key: CurveIndex) -> Iter<'_, V> {
        self.range_iter(key, CurveIndex::MAX)
    }

    /// Descending iteration over keys strictly below `key`.
    pub fn iter_rev_below(&self, key: CurveIndex) -> RevIter<'_, V> {
        if self.root == NIL {
            return RevIter {
                tree: self,
                leaf: NIL,
                slot: 0,
            };
        }
        let leaf = self.seek_leaf(key);
        let slot = self.leaves[leaf as usize]
            .keys
            .partition_point(|&k| k < key);
        RevIter {
            tree: self,
            leaf,
            slot,
        }
    }

    /// A cursor at the smallest key, or `None` on an empty tree.
    pub fn cursor_first(&self) -> Option<Cursor> {
        let leaf = self.leaves.get(self.head as usize)?;
        Some(Cursor {
            key: *leaf.keys.first()?,
            leaf: self.head,
            slot: 0,
        })
    }

    /// A cursor at the first entry with key `>= key`, or `None` if no
    /// such entry exists.
    pub fn cursor_seek(&self, key: CurveIndex) -> Option<Cursor> {
        if self.root == NIL {
            return None;
        }
        let mut leaf_id = self.seek_leaf(key);
        let mut slot = self.leaves[leaf_id as usize]
            .keys
            .partition_point(|&k| k < key);
        if slot == self.leaves[leaf_id as usize].keys.len() {
            leaf_id = self.leaves[leaf_id as usize].next;
            slot = 0;
        }
        let leaf = self.leaves.get(leaf_id as usize)?;
        Some(Cursor {
            key: *leaf.keys.get(slot)?,
            leaf: leaf_id,
            slot: slot as u32,
        })
    }

    /// The cursor's current position, revalidated against the live tree:
    /// O(1) when mutation left the entry in place, one hint-assisted
    /// seek otherwise, `None` when the key is gone.
    fn locate(&self, c: &Cursor) -> Option<(u32, usize)> {
        if let Some(leaf) = self.leaves.get(c.leaf as usize) {
            let s = c.slot as usize;
            if leaf.keys.get(s) == Some(&c.key) {
                return Some((c.leaf, s));
            }
        }
        let leaf_id = self.seek_leaf(c.key);
        let leaf = self.leaves.get(leaf_id as usize)?;
        let s = leaf.keys.binary_search(&c.key).ok()?;
        Some((leaf_id, s))
    }
}

/// An owned position in a [`BPlusTreeMap`], valid across mutation: it
/// borrows nothing, remembers `(key, leaf, slot)`, and revalidates on
/// every access. After the entry it points at is removed,
/// [`value`](Cursor::value) returns `None` while
/// [`next`](Cursor::next)/[`prev`](Cursor::prev) continue the walk from
/// the remembered key — the sweep-bptree cursor contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    key: CurveIndex,
    leaf: u32,
    slot: u32,
}

impl Cursor {
    /// The key this cursor was positioned at.
    pub fn key(&self) -> CurveIndex {
        self.key
    }

    /// The value currently stored at the cursor's key, or `None` if the
    /// key has been removed since.
    pub fn value<'a, V>(&self, tree: &'a BPlusTreeMap<V>) -> Option<&'a V> {
        let (leaf, slot) = tree.locate(self)?;
        Some(&tree.leaves[leaf as usize].vals[slot])
    }

    /// A cursor at the smallest key strictly greater than this one, or
    /// `None` at the end. Works whether or not the current key still
    /// exists.
    pub fn next<V>(&self, tree: &BPlusTreeMap<V>) -> Option<Cursor> {
        if let Some((leaf_id, slot)) = tree.locate(self) {
            let leaf = &tree.leaves[leaf_id as usize];
            if let Some(&key) = leaf.keys.get(slot + 1) {
                return Some(Cursor {
                    key,
                    leaf: leaf_id,
                    slot: (slot + 1) as u32,
                });
            }
            let next = tree.leaves.get(leaf.next as usize)?;
            return Some(Cursor {
                key: *next.keys.first()?,
                leaf: leaf.next,
                slot: 0,
            });
        }
        tree.cursor_seek(self.key.checked_add(1)?)
    }

    /// A cursor at the largest key strictly smaller than this one, or
    /// `None` at the start. Works whether or not the current key still
    /// exists.
    pub fn prev<V>(&self, tree: &BPlusTreeMap<V>) -> Option<Cursor> {
        let mut it = tree.iter_rev_below(self.key);
        let (key, _) = it.next()?;
        Some(Cursor {
            key,
            leaf: it.leaf,
            slot: it.slot as u32,
        })
    }
}

/// Ascending borrowed iterator over a [`BPlusTreeMap`] — see
/// [`BPlusTreeMap::iter`] / [`range_iter`](BPlusTreeMap::range_iter).
/// Yields `(key, &value)` (keys are `Copy`).
#[derive(Debug)]
pub struct Iter<'a, V> {
    tree: &'a BPlusTreeMap<V>,
    leaf: u32,
    slot: usize,
    hi: CurveIndex,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (CurveIndex, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.tree.leaves.get(self.leaf as usize)?;
            if let Some(&key) = leaf.keys.get(self.slot) {
                if key > self.hi {
                    self.leaf = NIL;
                    return None;
                }
                let val = &leaf.vals[self.slot];
                self.slot += 1;
                return Some((key, val));
            }
            self.leaf = leaf.next;
            self.slot = 0;
        }
    }
}

/// Descending borrowed iterator — see
/// [`BPlusTreeMap::iter_rev_below`]. Yields `(key, &value)`.
#[derive(Debug)]
pub struct RevIter<'a, V> {
    tree: &'a BPlusTreeMap<V>,
    leaf: u32,
    /// One past the next slot to yield; 0 = step to the previous leaf.
    slot: usize,
}

impl<'a, V> Iterator for RevIter<'a, V> {
    type Item = (CurveIndex, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.tree.leaves.get(self.leaf as usize)?;
            if self.slot > 0 {
                self.slot -= 1;
                return Some((leaf.keys[self.slot], &leaf.vals[self.slot]));
            }
            self.leaf = leaf.prev;
            self.slot = self
                .tree
                .leaves
                .get(self.leaf as usize)
                .map_or(0, |l| l.keys.len());
        }
    }
}

/// Owned ascending iterator — the ordered drain path: leaves are
/// consumed in chain order, each one's columns moved out wholesale.
#[derive(Debug)]
pub struct IntoIter<V> {
    leaves: Vec<Leaf<V>>,
    next_leaf: u32,
    keys: std::vec::IntoIter<CurveIndex>,
    vals: std::vec::IntoIter<V>,
}

impl<V> Iterator for IntoIter<V> {
    type Item = (CurveIndex, V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(key) = self.keys.next() {
                let val = self.vals.next().expect("parallel columns");
                return Some((key, val));
            }
            let id = self.next_leaf;
            if id == NIL {
                return None;
            }
            let leaf = std::mem::replace(
                &mut self.leaves[id as usize],
                Leaf {
                    keys: Vec::new(),
                    vals: Vec::new(),
                    prev: NIL,
                    next: NIL,
                },
            );
            self.next_leaf = leaf.next;
            self.keys = leaf.keys.into_iter();
            self.vals = leaf.vals.into_iter();
        }
    }
}

impl<V> IntoIterator for BPlusTreeMap<V> {
    type Item = (CurveIndex, V);
    type IntoIter = IntoIter<V>;

    fn into_iter(self) -> Self::IntoIter {
        IntoIter {
            next_leaf: self.head,
            leaves: self.leaves,
            keys: Vec::new().into_iter(),
            vals: Vec::new().into_iter(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn keys(tree: &BPlusTreeMap<u64>) -> Vec<CurveIndex> {
        tree.iter().map(|(k, _)| k).collect()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = BPlusTreeMap::with_leaf_capacity(4);
        assert!(t.is_empty());
        for k in [5u128, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            assert_eq!(t.insert(k, k as u64 * 10), None);
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.insert(5, 999), Some(50));
        assert_eq!(t.get(&5), Some(&999));
        assert_eq!(keys(&t), (0..10).collect::<Vec<_>>());
        assert_eq!(t.remove(&5), Some(999));
        assert_eq!(t.remove(&5), None);
        assert_eq!(t.get(&5), None);
        assert_eq!(t.len(), 9);
        for k in 0..10u128 {
            t.remove(&k);
        }
        assert!(t.is_empty());
        assert_eq!(keys(&t), Vec::<CurveIndex>::new());
        // Reuse after emptying.
        t.insert(42, 1);
        assert_eq!(t.get(&42), Some(&1));
    }

    #[test]
    fn matches_btreemap_under_random_ops() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xB71);
        let mut tree = BPlusTreeMap::with_leaf_capacity(8);
        let mut model: BTreeMap<CurveIndex, u64> = BTreeMap::new();
        for step in 0..20_000u64 {
            let k = u128::from(rng.gen_range(0..512u32));
            match rng.gen_range(0..10u32) {
                0..=6 => {
                    assert_eq!(tree.insert(k, step), model.insert(k, step), "insert {k}");
                }
                7..=8 => {
                    assert_eq!(tree.remove(&k), model.remove(&k), "remove {k}");
                }
                _ => {
                    let hi = k + u128::from(rng.gen_range(0..64u32));
                    let got: Vec<_> = tree.range_iter(k, hi).map(|(k, &v)| (k, v)).collect();
                    let want: Vec<_> = model.range(k..=hi).map(|(&k, &v)| (k, v)).collect();
                    assert_eq!(got, want, "range {k}..={hi}");
                }
            }
            assert_eq!(tree.len(), model.len());
        }
        let got: Vec<_> = tree.iter().map(|(k, &v)| (k, v)).collect();
        let want: Vec<_> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want);
        let got_rev: Vec<_> = tree.iter_rev_below(300).map(|(k, &v)| (k, v)).collect();
        let want_rev: Vec<_> = model
            .range(..300u128)
            .rev()
            .map(|(&k, &v)| (k, v))
            .collect();
        assert_eq!(got_rev, want_rev);
    }

    #[test]
    fn from_sorted_bulk_load_matches_inserts() {
        let entries: Vec<(CurveIndex, u64)> =
            (0..1000u128).step_by(3).map(|k| (k, k as u64)).collect();
        let bulk = BPlusTreeMap::from_sorted_with_capacity(16, entries.iter().copied());
        assert_eq!(bulk.len(), entries.len());
        let walked: Vec<_> = bulk.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(walked, entries);
        assert_eq!(bulk.get(&999), Some(&999));
        assert_eq!(bulk.get(&998), None);
        let drained: Vec<_> = bulk.into_iter().collect();
        assert_eq!(drained, entries);
    }

    #[test]
    fn retain_drains_a_seq_window() {
        let mut t = BPlusTreeMap::with_leaf_capacity(8);
        for k in 0..500u128 {
            t.insert(k, k as u64);
        }
        t.retain(|_, &v| v >= 250);
        assert_eq!(t.len(), 250);
        assert_eq!(keys(&t), (250..500).collect::<Vec<_>>());
        // The rebuilt tree keeps absorbing writes correctly.
        for k in 0..250u128 {
            t.insert(k, k as u64 + 1000);
        }
        assert_eq!(t.len(), 500);
        assert_eq!(keys(&t), (0..500).collect::<Vec<_>>());
        t.retain(|_, _| false);
        assert!(t.is_empty());
        assert_eq!(t.cursor_first(), None);
    }

    #[test]
    fn cursors_survive_mutation() {
        let mut t = BPlusTreeMap::with_leaf_capacity(4);
        for k in (0..100u128).step_by(2) {
            t.insert(k, k as u64);
        }
        let c0 = t.cursor_first().expect("non-empty");
        assert_eq!(c0.key(), 0);
        assert_eq!(c0.value(&t), Some(&0));
        // Remove under the cursor: value() goes dark, next() moves on.
        t.remove(&0);
        assert_eq!(c0.value(&t), None);
        let c1 = c0.next(&t).expect("more entries");
        assert_eq!(c1.key(), 2);
        // Splits and inserts between accesses don't invalidate it.
        for k in (1..100u128).step_by(2) {
            t.insert(k, k as u64);
        }
        assert_eq!(c1.value(&t), Some(&2));
        let c2 = c1.next(&t).expect("more entries");
        assert_eq!(c2.key(), 3);
        let back = c2.prev(&t).expect("has predecessor");
        assert_eq!(back.key(), 2);
        // Walk the whole tree through cursors and compare with iter().
        let mut walked = Vec::new();
        let mut c = t.cursor_first();
        while let Some(cur) = c {
            walked.push(cur.key());
            c = cur.next(&t);
        }
        assert_eq!(walked, keys(&t));
        // A cursor whose whole neighborhood is drained re-seeks by key.
        let mid = t.cursor_seek(50).expect("present");
        t.retain(|k, _| k >= 80);
        assert_eq!(mid.value(&t), None);
        assert_eq!(mid.next(&t).expect("tail remains").key(), 80);
    }

    #[test]
    fn hint_accelerated_local_stream_stays_correct() {
        let mut t = BPlusTreeMap::with_leaf_capacity(32);
        // A curve-local walk: keys wander up and down in a small window.
        let mut key = 1_000u128;
        let mut model = BTreeMap::new();
        for i in 0..10_000u64 {
            key = if i % 7 < 4 {
                key + 3
            } else {
                key.saturating_sub(2)
            };
            t.insert(key, i);
            model.insert(key, i);
        }
        assert_eq!(t.len(), model.len());
        let got: Vec<_> = t.iter().map(|(k, &v)| (k, v)).collect();
        let want: Vec<_> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn heap_bytes_tracks_leaf_count() {
        let mut t = BPlusTreeMap::<u64>::with_leaf_capacity(16);
        let empty = t.heap_bytes();
        for k in 0..1_000u128 {
            t.insert(k, 0);
        }
        let full = t.heap_bytes();
        assert!(full > empty);
        // Draining keeps slab allocations (recycled), clear() drops them.
        t.retain(|_, _| false);
        assert!(t.heap_bytes() >= full / 2);
        t.clear();
        // Only the (tiny, retained) free-list buffers remain.
        assert!(t.heap_bytes() < full / 100);
    }
}
