//! Owned, immutable snapshots of a store's contents.
//!
//! A [`StoreSnapshot`] pins the run stack an [`SfcStore`](crate::SfcStore)
//! had at [`snapshot()`](crate::SfcStore::snapshot) time by cloning its
//! `Arc`s — `O(runs)` pointer copies, no record is moved. Because runs are
//! immutable and the curve itself is shared, the snapshot keeps answering
//! queries against exactly that state while the writer continues to absorb
//! inserts and deletes into fresh memtables and runs.
//!
//! Unlike the store (which hands out views borrowing `&self`), a snapshot
//! is a free-standing **owned** value: it can be moved to another thread
//! and queried there — it is `Send + Sync` whenever the payload and curve
//! are. In the concurrent sharded engine this is the fully lock-free read
//! path: [`ShardedSfcStore::snapshot`](crate::ShardedSfcStore::snapshot)
//! pins each shard's published epoch (see the `epoch` module), and the
//! resulting snapshot never touches a lock again, no matter how many
//! writers keep pounding the store.

use sfc_core::{CurveIndex, Point, SpaceFillingCurve, ZCurve};
use sfc_index::{BoxRegion, QueryStats, SfcIndex};

use crate::store::StoreEntryRef;
use crate::view::{LevelsView, QueryPlan, Run, SnapshotIter};

/// A frozen, queryable view of one store's contents at snapshot time.
///
/// Obtained from [`SfcStore::snapshot`](crate::SfcStore::snapshot); all
/// query methods mirror the store's and return byte-identical results for
/// the state the snapshot pinned.
#[derive(Debug, Clone)]
pub struct StoreSnapshot<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    curve: C,
    /// Pinned immutable runs, oldest first (tombstones included — the
    /// snapshot merges them away exactly like the store does).
    runs: Vec<Run<D, T, C>>,
    /// Live records visible in this snapshot.
    live: usize,
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> StoreSnapshot<D, T, C> {
    pub(crate) fn new(curve: C, runs: Vec<Run<D, T, C>>, live: usize) -> Self {
        Self { curve, runs, live }
    }

    pub(crate) fn view(&self) -> LevelsView<'_, D, T, C> {
        LevelsView {
            curve: &self.curve,
            memtable: None,
            runs: &self.runs,
        }
    }

    /// The curve backing this snapshot.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// Number of live records visible in the snapshot.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` iff the snapshot holds no live records.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Sizes of the pinned runs, oldest first (tombstones included).
    pub fn run_lens(&self) -> Vec<usize> {
        self.runs.iter().map(|run| run.len()).collect()
    }

    /// The live payload at cell `p` as of snapshot time, if any.
    pub fn get(&self, p: Point<D>) -> Option<&T> {
        if !self.curve.grid().contains(&p) {
            return None;
        }
        self.view()
            .version(self.curve.index_of(p))
            .and_then(|v| v.map(|(_, t)| t))
    }

    /// Box query through the adaptive planner — see
    /// [`SfcStore::query_box`](crate::SfcStore::query_box).
    pub fn query_box(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.view().query_box(b)
    }

    /// The per-level plan [`query_box`](Self::query_box) would execute —
    /// see [`SfcStore::plan_box_query`](crate::SfcStore::plan_box_query).
    pub fn plan_box_query(&self, b: &BoxRegion<D>) -> QueryPlan {
        self.view().plan_box(b)
    }

    /// Box query via exact interval decomposition — see
    /// [`SfcStore::query_box_intervals`](crate::SfcStore::query_box_intervals).
    pub fn query_box_intervals(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.view().query_box_intervals(b)
    }

    /// Queries the pinned runs for keys inside the given inclusive
    /// curve-index intervals (sorted ascending), merging newest-wins.
    pub fn query_intervals(
        &self,
        intervals: &[(CurveIndex, CurveIndex)],
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.view().query_intervals(intervals)
    }

    /// Exact k-nearest-neighbor query — see
    /// [`SfcStore::knn`](crate::SfcStore::knn).
    pub fn knn(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        if self.is_empty() {
            return (Vec::new(), QueryStats::default());
        }
        self.view().knn(q, k, window)
    }

    /// Reference k-nearest-neighbor by linear scan (ground truth for
    /// tests).
    pub fn knn_linear(&self, q: Point<D>, k: usize) -> Vec<StoreEntryRef<'_, D, T>> {
        crate::view::rank_by_distance(self.iter().collect(), q, k)
    }

    /// All live records in curve order, newest-wins, tombstones
    /// suppressed.
    pub fn iter(&self) -> SnapshotIter<'_, D, T> {
        self.view().iter()
    }

    /// Materialises the snapshot's live set into a static [`SfcIndex`].
    pub fn to_index(&self) -> SfcIndex<D, T, C>
    where
        T: Clone,
    {
        let mut keys = Vec::with_capacity(self.live);
        let mut points = Vec::with_capacity(self.live);
        let mut payloads = Vec::with_capacity(self.live);
        for entry in self.iter() {
            keys.push(entry.key);
            points.push(entry.point);
            payloads.push(entry.payload.clone());
        }
        SfcIndex::from_sorted(self.curve.clone(), keys, points, payloads)
    }
}

impl<const D: usize, T> StoreSnapshot<D, T, ZCurve<D>> {
    /// Box query by BIGMIN-jumping key-range scans — see
    /// [`SfcStore::query_box_bigmin`](crate::SfcStore::query_box_bigmin).
    /// Z curve only.
    pub fn query_box_bigmin(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.view().query_box_bigmin(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SfcStore;
    use rand::SeedableRng;
    use sfc_core::Grid;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<X: Send + Sync>() {}
        assert_send_sync::<StoreSnapshot<2, u32, ZCurve<2>>>();
    }

    #[test]
    fn snapshot_freezes_state_while_writer_continues() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 8);
        let mut rng = rng(5);
        for i in 0..120u32 {
            store.insert(grid.random_cell(&mut rng), i);
        }
        let frozen = store.snapshot();
        let frozen_entries: Vec<(CurveIndex, u32)> =
            frozen.iter().map(|e| (e.key, *e.payload)).collect();
        assert_eq!(frozen.len(), store.len());

        // Writer churns on: updates, deletes, flushes, a full compaction.
        for i in 0..200u32 {
            let p = grid.random_cell(&mut rng);
            if i % 3 == 0 {
                store.delete(p);
            } else {
                store.insert(p, 1_000 + i);
            }
        }
        store.compact();

        // The snapshot still answers from the pinned state.
        let after: Vec<(CurveIndex, u32)> = frozen.iter().map(|e| (e.key, *e.payload)).collect();
        assert_eq!(frozen_entries, after, "snapshot drifted under writes");
        for (key, payload) in &frozen_entries {
            let p = frozen.curve().point_of(*key);
            assert_eq!(frozen.get(p), Some(payload));
        }
    }

    #[test]
    fn snapshot_queries_match_store_at_snapshot_time() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 8);
        let mut rng = rng(9);
        for i in 0..250u32 {
            let p = grid.random_cell(&mut rng);
            if i % 5 == 4 {
                store.delete(p);
            } else {
                store.insert(p, i);
            }
        }
        let frozen = store.snapshot();
        let flat = |v: Vec<StoreEntryRef<'_, 2, u32>>| {
            v.into_iter()
                .map(|e| (e.key, e.point, *e.payload))
                .collect::<Vec<_>>()
        };
        for _ in 0..20 {
            let a = grid.random_cell(&mut rng);
            let c = grid.random_cell(&mut rng);
            let lo = Point::new([a.coord(0).min(c.coord(0)), a.coord(1).min(c.coord(1))]);
            let hi = Point::new([a.coord(0).max(c.coord(0)), a.coord(1).max(c.coord(1))]);
            let b = BoxRegion::new(lo, hi);
            assert_eq!(
                flat(frozen.query_box_intervals(&b).0),
                flat(store.query_box_intervals(&b).0)
            );
            assert_eq!(
                flat(frozen.query_box_bigmin(&b).0),
                flat(store.query_box_bigmin(&b).0)
            );
            let q = grid.random_cell(&mut rng);
            let gd: Vec<u64> = frozen
                .knn(q, 4, 3)
                .0
                .iter()
                .map(|e| q.euclidean_sq(&e.point))
                .collect();
            let wd: Vec<u64> = frozen
                .knn_linear(q, 4)
                .iter()
                .map(|e| q.euclidean_sq(&e.point))
                .collect();
            assert_eq!(gd, wd);
        }
        assert_eq!(frozen.to_index().len(), frozen.len());
    }

    #[test]
    fn empty_snapshot() {
        let grid = Grid::<2>::new(3).unwrap();
        let mut store: SfcStore<2, u32, _> = SfcStore::new(ZCurve::over(grid));
        let frozen = store.snapshot();
        assert!(frozen.is_empty());
        assert_eq!(frozen.iter().count(), 0);
        assert!(frozen.run_lens().is_empty());
        let b = BoxRegion::new(Point::new([0, 0]), Point::new([7, 7]));
        assert!(frozen.query_box_intervals(&b).0.is_empty());
        assert!(frozen.knn(Point::new([1, 1]), 2, 2).0.is_empty());
    }
}
