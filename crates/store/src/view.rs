//! The shared multi-level query engine and the adaptive query planner.
//!
//! An [`SfcStore`](crate::SfcStore) reads merge a mutable memtable with a
//! stack of immutable runs; a [`StoreSnapshot`](crate::StoreSnapshot)
//! reads merge a frozen run stack only. Both are the *same* algorithm —
//! newest level wins, tombstones suppress older versions, per-level work
//! summed into one [`QueryStats`] — so it lives here once, expressed over
//! a [`LevelsView`]: an optional borrowed memtable plus a slice of
//! `Arc`-shared runs.
//!
//! ## The adaptive box-query planner
//!
//! A box query has two exact execution strategies per level — walking the
//! box's precomputed curve intervals, or BIGMIN key-range jumping (Morton
//! order only) — and their costs scale differently: intervals pay
//! `O(volume · log volume)` preprocessing once plus one galloped seek per
//! interval per level, BIGMIN pays nothing up front but re-derives the
//! box structure per level through jump computations. Forcing one
//! strategy store-wide (the old `query_box_intervals` / `query_box_bigmin`
//! dichotomy, both still available) leaves work on the table: a store
//! usually holds one huge bottom run *and* several small recent runs, and
//! the right answer differs per run.
//!
//! [`LevelsView::plan_box`] picks per level, from run statistics:
//!
//! 1. **Decompose or not.** Non-Morton curves always decompose (intervals
//!    are their only exact strategy). The Z curve decomposes only when the
//!    box volume is at most [`INTERVAL_VOLUME_CUTOFF`] cells — beyond
//!    that, enumerating the box costs more than BIGMIN-scanning every
//!    level.
//! 2. **Prune.** A run whose key range misses the box's curve span, or
//!    whose block-summary AABB misses the box outright, is skipped wholesale
//!    ([`LevelStrategy::Pruned`], counted in
//!    [`QueryStats::blocks_pruned`]).
//! 3. **Per-run choice.** With intervals in hand, a run estimated (via two
//!    fence-array searches) to hold fewer slots inside the box's key span
//!    than there are intervals is BIGMIN-scanned — a short jumping scan
//!    beats issuing one seek per interval against a table that small. The
//!    memtable makes the same choice against its total size.
//!
//! The resulting [`QueryPlan`] is observable through
//! [`SfcStore::plan_box_query`](crate::SfcStore::plan_box_query) (see
//! `examples/query_planner.rs`), and every executed strategy records
//! per-block work in `blocks_scanned` / `blocks_pruned` /
//! `blocks_decoded`.

use std::cell::RefCell;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::sync::Arc;

use sfc_core::{CurveIndex, Point, SpaceFillingCurve, ZCurve};
use sfc_index::{
    bigmin, bigmin_scan, bigmin_scan_plain, interval_scan, interval_scan_plain, BlockCursor,
    BlockStore, BoxRegion, DecodedBlock, QueryStats, SfcIndex, BLOCK_SLOTS,
};

use crate::store::StoreEntryRef;

/// Boxes with at most this many cells are decomposed into exact curve
/// intervals when planning a Morton-order box query; larger boxes run on
/// BIGMIN jumps alone. Non-Morton curves always decompose (it is their
/// only exact strategy).
///
/// The threshold is deliberately low: decomposition costs one encode plus
/// an `O(volume log volume)` sort *per query*, while the zone-accelerated
/// BIGMIN scan re-derives the same structure lazily per level at a few
/// jumps per key-range island — measured on a multi-run million-record
/// store, jumping overtakes decomposition well before a hundred cells.
/// Tiny boxes (point-ish lookups) still profit from the zero-overscan
/// interval walk, which is where the per-level choice below kicks in.
pub const INTERVAL_VOLUME_CUTOFF: u128 = 64;

/// kNN verification balls up to this many cells are decomposed into exact
/// curve intervals instead of going through the adaptive box planner.
///
/// The ball's side is twice the k-th candidate distance, so a tight
/// candidate walk produces a box of one-to-a-few hundred cells — the
/// regime where BIGMIN's key-island overscan costs more extra slot
/// examinations than decomposition costs to set up (the general-purpose
/// [`INTERVAL_VOLUME_CUTOFF`] is tuned for broad boxes, not for the
/// point-ish balls kNN verification emits). The cutoff stays small
/// because decomposition pays one curve encode per cell of volume:
/// beyond a few hundred cells that setup alone outweighs the overscan it
/// avoids, and the adaptive planner takes over.
pub const KNN_BALL_INTERVALS_CUTOFF: u128 = 256;

/// The newest-level table: key → (cell, payload-or-tombstone). An opaque
/// [`SfcMemtable`](crate::memtable::SfcMemtable) — the concrete map
/// behind it (locality-aware B+tree by default, `BTreeMap` under the
/// `memtable-btreemap` differential feature) is invisible to every layer
/// compiled against this alias.
pub(crate) type Memtable<const D: usize, T> = crate::memtable::SfcMemtable<(Point<D>, Option<T>)>;

/// One immutable sorted run, shareable with snapshots. Tombstones live in
/// the run's block bitmap; payloads are the dense live-only column.
pub(crate) type Run<const D: usize, T, C> = Arc<SfcIndex<D, T, C>>;

/// The version of a cell found at some level: `None` payload = tombstone.
pub(crate) type Version<'a, const D: usize, T> = Option<(Point<D>, &'a T)>;

/// An inclusive curve-index interval, as produced by
/// [`BoxRegion::curve_intervals`].
type Interval = (CurveIndex, CurveIndex);

/// One level's query hits, in ascending key order (the order every scan
/// visits them in).
type LevelHits<'a, const D: usize, T> = Vec<(CurveIndex, Version<'a, D, T>)>;

/// How the planner executes (or skips) one level of a box query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelStrategy {
    /// Walk the box's precomputed curve intervals with galloped seeks.
    Intervals,
    /// BIGMIN key-range jumping scan (Morton order only).
    Bigmin,
    /// Skipped wholesale: the level's key range or point AABB cannot
    /// intersect the box.
    Pruned,
}

impl fmt::Display for LevelStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LevelStrategy::Intervals => "intervals",
            LevelStrategy::Bigmin => "bigmin",
            LevelStrategy::Pruned => "pruned",
        })
    }
}

/// The per-level execution plan for one box query — see the module docs
/// for how it is chosen and
/// [`SfcStore::plan_box_query`](crate::SfcStore::plan_box_query) for
/// inspecting it.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Cells in the query box.
    pub volume: u128,
    /// Strategy for the memtable level (`None` when the view has no
    /// memtable, e.g. snapshots).
    pub memtable: Option<LevelStrategy>,
    /// Strategy per immutable run, oldest first.
    pub runs: Vec<LevelStrategy>,
    /// The box's exact curve intervals, when the planner decided to
    /// decompose.
    intervals: Option<Vec<Interval>>,
}

impl QueryPlan {
    /// Number of curve intervals the box decomposed into, or `None` if the
    /// planner skipped decomposition (large Morton-order boxes).
    pub fn interval_count(&self) -> Option<usize> {
        self.intervals.as_ref().map(Vec::len)
    }
}

/// `true` iff the planner should decompose a box of this volume into exact
/// curve intervals for this curve.
pub(crate) fn should_decompose<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    volume: u128,
) -> bool {
    curve.as_morton().is_none() || volume <= INTERVAL_VOLUME_CUTOFF
}

thread_local! {
    /// Reusable kNN candidate scratch: a max-heap of the best `k` squared
    /// candidate distances seen so far, shared across all levels (and all
    /// shards) of one query and reused across queries — candidate
    /// collection allocates nothing after warm-up.
    static KNN_HEAP: RefCell<BinaryHeap<u64>> = const { RefCell::new(BinaryHeap::new()) };
}

/// Offers a squared distance to the top-k max-heap.
#[inline]
pub(crate) fn offer(heap: &mut BinaryHeap<u64>, k: usize, dist_sq: u64) {
    if heap.len() < k {
        heap.push(dist_sq);
    } else if dist_sq < *heap.peek().expect("non-empty: len >= k >= 1") {
        heap.pop();
        heap.push(dist_sq);
    }
}

/// The verification radius bounded by the heap's k-th best candidate
/// distance, or the whole grid if fewer than `k` live candidates exist —
/// possible only when the queried structure holds fewer than `k` live
/// records.
pub(crate) fn radius_from_heap<const D: usize>(
    grid: sfc_core::Grid<D>,
    heap: &BinaryHeap<u64>,
    k: usize,
) -> u32 {
    if heap.len() >= k {
        (*heap.peek().expect("k >= 1") as f64).sqrt().ceil() as u32
    } else {
        (grid.side() - 1) as u32
    }
}

/// A borrowed view of the levels of a store or snapshot: the newest level
/// (an optional memtable) over a stack of immutable runs, oldest first.
pub(crate) struct LevelsView<'a, const D: usize, T, C: SpaceFillingCurve<D>> {
    pub curve: &'a C,
    /// `None` for snapshots (whose memtable was flushed at creation).
    pub memtable: Option<&'a Memtable<D, T>>,
    /// Oldest → newest, like the store's run stack.
    pub runs: &'a [Run<D, T, C>],
}

impl<'a, const D: usize, T, C: SpaceFillingCurve<D>> LevelsView<'a, D, T, C> {
    /// The newest version of `key` across all levels, or `None` if no
    /// level mentions it. `Some(None)` means the newest version is a
    /// tombstone.
    pub(crate) fn version(&self, key: CurveIndex) -> Option<Version<'a, D, T>> {
        if let Some(mem) = self.memtable {
            if let Some((point, slot)) = mem.get(&key) {
                return Some(slot.as_ref().map(|t| (*point, t)));
            }
        }
        for run in self.runs.iter().rev() {
            if let Some(i) = run.find_key(key) {
                return Some(run.payload_at(i).map(|t| (run.point_at(i), t)));
            }
        }
        None
    }

    /// `true` iff the newest version of `key` is live.
    pub(crate) fn is_live(&self, key: CurveIndex) -> bool {
        matches!(self.version(key), Some(Some(_)))
    }

    /// `true` iff some level strictly newer than run `run_idx` holds a
    /// version of `key` (so run `run_idx`'s version is not the visible one).
    fn shadowed_above(&self, key: CurveIndex, run_idx: usize) -> bool {
        self.memtable.is_some_and(|mem| mem.contains_key(&key))
            || self.runs[run_idx + 1..]
                .iter()
                .any(|run| run.find_key(key).is_some())
    }

    /// Collects the merged per-level versions into the final result.
    fn collect_merged(
        merged: BTreeMap<CurveIndex, Version<'a, D, T>>,
        mut stats: QueryStats,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let out: Vec<StoreEntryRef<'a, D, T>> = merged
            .into_iter()
            .filter_map(|(key, version)| {
                version.map(|(point, payload)| StoreEntryRef {
                    key,
                    point,
                    payload,
                })
            })
            .collect();
        stats.reported = out.len() as u64;
        (out, stats)
    }

    /// Merges per-level hit lists (each ascending in key, ordered newest
    /// level first) into the final newest-wins result. A k-way merge over
    /// a handful of already-sorted vectors — `O(levels)` per output row
    /// with zero per-row allocation, replacing the old per-hit `BTreeMap`
    /// insertion that dominated query time on large result sets.
    fn merge_level_hits(
        levels: Vec<LevelHits<'a, D, T>>,
        mut stats: QueryStats,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let mut pos = vec![0usize; levels.len()];
        let upper: usize = levels.iter().map(Vec::len).sum();
        let mut out: Vec<StoreEntryRef<'a, D, T>> = Vec::with_capacity(upper);
        loop {
            let mut min: Option<CurveIndex> = None;
            for (level, &p) in levels.iter().zip(&pos) {
                if let Some(&(key, _)) = level.get(p) {
                    min = Some(min.map_or(key, |m| m.min(key)));
                }
            }
            let Some(min) = min else { break };
            // The first (newest) level holding the min key wins; every
            // level holding it advances.
            let mut winner: Option<Version<'a, D, T>> = None;
            for (level, p) in levels.iter().zip(pos.iter_mut()) {
                if let Some(&(key, version)) = level.get(*p) {
                    if key == min {
                        winner.get_or_insert(version);
                        *p += 1;
                    }
                }
            }
            if let Some(Some((point, payload))) = winner {
                out.push(StoreEntryRef {
                    key: min,
                    point,
                    payload,
                });
            }
        }
        stats.reported = out.len() as u64;
        (out, stats)
    }

    /// `true` iff the run cannot contribute to keys within `[lo, hi]`.
    fn run_outside_span(run: &Run<D, T, C>, lo: CurveIndex, hi: CurveIndex) -> bool {
        if run.is_empty() {
            return true;
        }
        run.key_at(run.len() - 1) < lo || run.blocks().fence(0) > hi
    }

    /// Picks the planner strategy for one run, given the curve span the
    /// query covers, the query box (for AABB pruning, when known), and the
    /// decomposed interval count (when available). `morton_adaptive` is
    /// set when both strategies are on the table for this run.
    fn run_strategy(
        run: &Run<D, T, C>,
        span: (CurveIndex, CurveIndex),
        b: Option<&BoxRegion<D>>,
        interval_count: Option<usize>,
        morton_adaptive: bool,
    ) -> LevelStrategy {
        if Self::run_outside_span(run, span.0, span.1) {
            return LevelStrategy::Pruned;
        }
        if let Some(b) = b {
            if run.blocks().run_disjoint(b) {
                return LevelStrategy::Pruned;
            }
        }
        match interval_count {
            None => LevelStrategy::Bigmin,
            Some(count) if morton_adaptive => {
                // Slots the run holds inside the span, at fence-array
                // search cost. A run smaller than the interval list is
                // cheaper to jump-scan than to seek once per interval.
                let lo_pos = run.lower_bound(span.0);
                let hi_pos = run.lower_bound(span.1 + 1);
                let span_slots = hi_pos - lo_pos;
                if span_slots == 0 {
                    LevelStrategy::Pruned
                } else if span_slots < count {
                    LevelStrategy::Bigmin
                } else {
                    LevelStrategy::Intervals
                }
            }
            Some(_) => LevelStrategy::Intervals,
        }
    }

    /// Builds the per-level execution plan for a box query, adopting
    /// already-decomposed (possibly shard-clipped) intervals instead of
    /// recomputing them. `intervals == None` means the planner decided
    /// against decomposition (Morton order, large box).
    pub(crate) fn plan_box_with(
        &self,
        b: &BoxRegion<D>,
        intervals: Option<Vec<Interval>>,
    ) -> QueryPlan {
        let volume = b.volume();
        let z = self.curve.as_morton();
        let interval_count = intervals.as_ref().map(Vec::len);
        // The curve span the query covers: Z(lo)..Z(hi) under Morton
        // order, else the hull of the interval list.
        let span = match z {
            Some(z) => (z.encode(b.lo()), z.encode(b.hi())),
            None => {
                let iv = intervals.as_ref().expect("non-Morton curves decompose");
                interval_hull(iv).unwrap_or((1, 0))
            }
        };
        let morton_adaptive = z.is_some();
        let runs = self
            .runs
            .iter()
            .map(|run| Self::run_strategy(run, span, Some(b), interval_count, morton_adaptive))
            .collect();
        let memtable = self.memtable.map(|mem| match interval_count {
            None => LevelStrategy::Bigmin,
            // The same size-vs-interval-count tradeoff as for runs, with
            // the memtable's total size standing in for its span slots.
            Some(count) if morton_adaptive && mem.len() < count => LevelStrategy::Bigmin,
            Some(_) => LevelStrategy::Intervals,
        });
        QueryPlan {
            volume,
            memtable,
            runs,
            intervals,
        }
    }

    /// Builds the per-level execution plan for a box query — see the
    /// module docs for the heuristics.
    pub(crate) fn plan_box(&self, b: &BoxRegion<D>) -> QueryPlan {
        let intervals =
            should_decompose(self.curve, b.volume()).then(|| b.curve_intervals(self.curve));
        self.plan_box_with(b, intervals)
    }

    /// Executes a box-query plan: every level is scanned with its chosen
    /// strategy into its own ascending hit list, pruned levels charge
    /// their zone-map blocks to `blocks_pruned`, and the lists k-way merge
    /// newest-wins.
    pub(crate) fn execute_plan(
        &self,
        b: &BoxRegion<D>,
        plan: &QueryPlan,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let mut stats = QueryStats::default();
        let mut levels: Vec<LevelHits<'a, D, T>> =
            Vec::with_capacity(self.runs.len() + usize::from(self.memtable.is_some()));
        if let (Some(mem), Some(strategy)) = (self.memtable, plan.memtable) {
            let mut hits: LevelHits<'a, D, T> = Vec::new();
            match strategy {
                LevelStrategy::Intervals => Self::mem_interval_scan(
                    mem,
                    plan.intervals.as_deref().expect("planned intervals"),
                    &mut stats,
                    |key, version| hits.push((key, version)),
                ),
                LevelStrategy::Bigmin => {
                    let z = self
                        .curve
                        .as_morton()
                        .expect("bigmin plans are Morton-only");
                    Self::mem_bigmin_scan(mem, z, b, &mut stats, |key, version| {
                        hits.push((key, version))
                    });
                }
                LevelStrategy::Pruned => {}
            }
            levels.push(hits);
        }
        for (run, &strategy) in self.runs.iter().zip(&plan.runs).rev() {
            let mut hits: LevelHits<'a, D, T> = Vec::new();
            match strategy {
                LevelStrategy::Pruned => stats.blocks_pruned += run.blocks().blocks() as u64,
                LevelStrategy::Intervals => {
                    let intervals = plan.intervals.as_deref().expect("planned intervals");
                    interval_scan(run.blocks(), intervals, &mut stats, |i, key, point| {
                        hits.push((key, run.payload_at(i).map(|t| (point, t))));
                    });
                }
                LevelStrategy::Bigmin => {
                    let z = self
                        .curve
                        .as_morton()
                        .expect("bigmin plans are Morton-only");
                    bigmin_scan(z, run.blocks(), b, &mut stats, |i, key, point| {
                        hits.push((key, run.payload_at(i).map(|t| (point, t))));
                    });
                }
            }
            levels.push(hits);
        }
        Self::merge_level_hits(levels, stats)
    }

    /// Box query through the adaptive planner: plan, then execute.
    pub(crate) fn query_box(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let plan = self.plan_box(b);
        self.execute_plan(b, &plan)
    }

    /// Scans the memtable for keys inside the intervals, surfacing each
    /// version to `sink` in ascending key order.
    fn mem_interval_scan(
        mem: &'a Memtable<D, T>,
        intervals: &[Interval],
        stats: &mut QueryStats,
        mut sink: impl FnMut(CurveIndex, Version<'a, D, T>),
    ) {
        for &(lo, hi) in intervals {
            stats.seeks += 1;
            for (key, (point, slot)) in mem.range_iter(lo, hi) {
                stats.scanned += 1;
                sink(key, slot.as_ref().map(|t| (*point, t)));
            }
        }
    }

    /// Sequential memtable range walk with BIGMIN jumps (Morton order),
    /// surfacing each version to `sink` in ascending key order.
    fn mem_bigmin_scan(
        mem: &'a Memtable<D, T>,
        z: &ZCurve<D>,
        b: &BoxRegion<D>,
        stats: &mut QueryStats,
        mut sink: impl FnMut(CurveIndex, Version<'a, D, T>),
    ) {
        let zmin = z.encode(b.lo());
        let zmax = z.encode(b.hi());
        stats.seeks += 1;
        let mut cur = zmin;
        'memtable: loop {
            let mut range = mem.range_iter(cur, zmax);
            loop {
                let Some((key, (point, slot))) = range.next() else {
                    break 'memtable;
                };
                stats.scanned += 1;
                if b.contains(point) {
                    sink(key, slot.as_ref().map(|t| (*point, t)));
                } else {
                    match bigmin(z, key, zmin, zmax) {
                        Some(next) => {
                            stats.seeks += 1;
                            cur = next;
                            break;
                        }
                        None => break 'memtable,
                    }
                }
            }
        }
    }

    /// Scans every level for keys inside the given inclusive curve-index
    /// intervals (sorted ascending, as produced by
    /// [`BoxRegion::curve_intervals`]), merging versions newest-wins. Runs
    /// whose key range misses the interval hull are pruned wholesale.
    pub(crate) fn query_intervals(
        &self,
        intervals: &[Interval],
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let mut stats = QueryStats::default();
        let mut levels: Vec<LevelHits<'a, D, T>> =
            Vec::with_capacity(self.runs.len() + usize::from(self.memtable.is_some()));
        let span = interval_hull(intervals).unwrap_or((1, 0));
        // Newest level first: the merge keeps the first version seen.
        if let Some(mem) = self.memtable {
            let mut hits: LevelHits<'a, D, T> = Vec::new();
            Self::mem_interval_scan(mem, intervals, &mut stats, |key, version| {
                hits.push((key, version))
            });
            levels.push(hits);
        }
        for run in self.runs.iter().rev() {
            if Self::run_outside_span(run, span.0, span.1) {
                stats.blocks_pruned += run.blocks().blocks() as u64;
                continue;
            }
            let mut hits: LevelHits<'a, D, T> = Vec::new();
            interval_scan(run.blocks(), intervals, &mut stats, |i, key, point| {
                hits.push((key, run.payload_at(i).map(|t| (point, t))));
            });
            levels.push(hits);
        }
        Self::merge_level_hits(levels, stats)
    }

    /// Box query via exact interval decomposition (computed once, scanned
    /// against every level). Works for any curve.
    pub(crate) fn query_box_intervals(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        self.query_intervals(&b.curve_intervals(self.curve))
    }

    /// The pre-zone-map interval query (whole-column seeks, no run
    /// pruning): reference implementation for differential tests and the
    /// baseline the benches compare against.
    pub(crate) fn query_intervals_plain(
        &self,
        intervals: &[Interval],
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let mut stats = QueryStats::default();
        let mut merged: BTreeMap<CurveIndex, Version<'a, D, T>> = BTreeMap::new();
        if let Some(mem) = self.memtable {
            Self::mem_interval_scan(mem, intervals, &mut stats, |key, version| {
                merged.entry(key).or_insert(version);
            });
        }
        for run in self.runs.iter().rev() {
            interval_scan_plain(run.blocks(), intervals, &mut stats, |i, key, point| {
                merged
                    .entry(key)
                    .or_insert_with(|| run.payload_at(i).map(|t| (point, t)));
            });
        }
        Self::collect_merged(merged, stats)
    }

    /// Collects live kNN candidates from every level into the top-k
    /// distance heap: per level, walk outward from the query key's
    /// position on both sides, **widening past tombstoned and shadowed
    /// slots** until `k` live candidates are bracketed on that side (or
    /// the level is exhausted), covering at least `window` slots per side
    /// unless the block summaries certify further slots useless.
    ///
    /// The block summaries sharpen the walk three ways:
    ///
    /// * **levels are visited biggest first** — the densest level almost
    ///   always holds the true nearest neighbors, so the heap's k-th best
    ///   is tight before the small levels are even looked at;
    /// * **all-dead blocks are skipped** without touching a slot — a
    ///   tombstone-heavy neighborhood costs one summary check per 64
    ///   slots instead of 64 payload probes;
    /// * once the heap holds `k` candidates, a side walk **skips any
    ///   block whose AABB distance lower bound exceeds the current k-th
    ///   best** — no slot of it can tighten the verification radius, so
    ///   the block costs one summary check instead of up to 64 decoded
    ///   slots. The walk *continues* past such a block (curve order is
    ///   not distance order, so nearer blocks may still lie further out),
    ///   crediting the block's live slots to the stop condition exactly
    ///   as scanning them would have.
    pub(crate) fn knn_collect(
        &self,
        q: Point<D>,
        key: CurveIndex,
        k: usize,
        window: usize,
        heap: &mut BinaryHeap<u64>,
        stats: &mut QueryStats,
    ) {
        // Biggest level first (the memtable competes by its length).
        let mut order: Vec<(usize, Option<usize>)> = self
            .runs
            .iter()
            .enumerate()
            .map(|(run_idx, run)| (run.len(), Some(run_idx)))
            .collect();
        if let Some(mem) = self.memtable {
            order.push((mem.len(), None));
        }
        order.sort_by_key(|&(len, _)| std::cmp::Reverse(len));
        for (_, level) in order {
            match level {
                None => self.knn_collect_memtable(q, key, k, window, heap, stats),
                Some(run_idx) => self.knn_collect_run(q, key, k, window, run_idx, heap, stats),
            }
        }
    }

    /// The memtable side of [`knn_collect`](Self::knn_collect).
    fn knn_collect_memtable(
        &self,
        q: Point<D>,
        key: CurveIndex,
        k: usize,
        window: usize,
        heap: &mut BinaryHeap<u64>,
        stats: &mut QueryStats,
    ) {
        let mem = self.memtable.expect("caller checked");
        stats.seeks += 1;
        let mut live = 0usize;
        let mut slots = 0usize;
        for (_ck, (point, slot)) in mem.iter_rev_below(key) {
            slots += 1;
            stats.scanned += 1;
            if slot.is_some() {
                offer(heap, k, q.euclidean_sq(point));
                live += 1;
            }
            if live >= k && slots >= window {
                break;
            }
        }
        live = 0;
        slots = 0;
        for (_ck, (point, slot)) in mem.iter_from(key) {
            slots += 1;
            stats.scanned += 1;
            if slot.is_some() {
                offer(heap, k, q.euclidean_sq(point));
                live += 1;
            }
            if live >= k && slots >= window {
                break;
            }
        }
    }

    /// One run's side walks of [`knn_collect`](Self::knn_collect),
    /// block at a time.
    #[allow(clippy::too_many_arguments)]
    fn knn_collect_run(
        &self,
        q: Point<D>,
        key: CurveIndex,
        k: usize,
        window: usize,
        run_idx: usize,
        heap: &mut BinaryHeap<u64>,
        stats: &mut QueryStats,
    ) {
        let run = &self.runs[run_idx];
        let blocks = run.blocks();
        let mut cur = BlockCursor::new(blocks);
        stats.seeks += 1;
        let pos = run.lower_bound(key);
        // Walk left (descending keys), block at a time.
        let mut live = 0usize;
        let mut slots = 0usize;
        let mut i = pos;
        while i > 0 && !(live >= k && slots >= window) {
            let block = blocks.block_of(i - 1);
            let range = blocks.block_range(block);
            if blocks.is_all_dead(block) {
                stats.blocks_pruned += 1;
                slots += i - range.start;
                i = range.start;
                continue;
            }
            if heap.len() >= k && blocks.min_dist_sq(block, &q) > *heap.peek().expect("len >= k") {
                // Skip, don't stop: every slot here is at least as far as
                // the k-th best, so scanning would count each live slot
                // without changing the heap — credit them and move on.
                stats.blocks_pruned += 1;
                live += blocks.live_in(block, range.start..i) as usize;
                slots += i - range.start;
                i = range.start;
                continue;
            }
            stats.blocks_scanned += 1;
            let dec = cur.decoded(block);
            while i > range.start && !(live >= k && slots >= window) {
                i -= 1;
                slots += 1;
                stats.scanned += 1;
                if blocks.is_live_slot(i) {
                    let j = i - range.start;
                    live += usize::from(self.knn_offer_slot(
                        q,
                        dec.keys[j],
                        dec.point(j),
                        run_idx,
                        k,
                        heap,
                    ));
                }
            }
        }
        // Walk right (ascending keys), block at a time.
        live = 0;
        slots = 0;
        let mut i = pos;
        while i < run.len() && !(live >= k && slots >= window) {
            let block = blocks.block_of(i);
            let range = blocks.block_range(block);
            if blocks.is_all_dead(block) {
                stats.blocks_pruned += 1;
                slots += range.end - i;
                i = range.end;
                continue;
            }
            if heap.len() >= k && blocks.min_dist_sq(block, &q) > *heap.peek().expect("len >= k") {
                stats.blocks_pruned += 1;
                live += blocks.live_in(block, i..range.end) as usize;
                slots += range.end - i;
                i = range.end;
                continue;
            }
            stats.blocks_scanned += 1;
            let dec = cur.decoded(block);
            while i < range.end && !(live >= k && slots >= window) {
                slots += 1;
                stats.scanned += 1;
                if blocks.is_live_slot(i) {
                    let j = i - range.start;
                    live += usize::from(self.knn_offer_slot(
                        q,
                        dec.keys[j],
                        dec.point(j),
                        run_idx,
                        k,
                        heap,
                    ));
                }
                i += 1;
            }
        }
        stats.blocks_decoded += cur.decodes;
    }

    /// Offers one non-tombstone run slot as a kNN candidate, returning
    /// whether it counts as a live candidate for the walk's stop
    /// condition. The expensive shadowed-above probe (one lookup per newer
    /// level) runs **only when the slot could actually enter the top-k
    /// heap**: a candidate no closer than the current k-th best cannot
    /// tighten the radius whether or not it is still visible, so it is
    /// counted and skipped — with the biggest level walked first, this
    /// reduces liveness probes from one per scanned slot to a handful per
    /// query.
    fn knn_offer_slot(
        &self,
        q: Point<D>,
        key: CurveIndex,
        point: Point<D>,
        run_idx: usize,
        k: usize,
        heap: &mut BinaryHeap<u64>,
    ) -> bool {
        let dist_sq = q.euclidean_sq(&point);
        if heap.len() >= k && dist_sq >= *heap.peek().expect("len >= k") {
            return true;
        }
        if self.shadowed_above(key, run_idx) {
            return false;
        }
        offer(heap, k, dist_sq);
        true
    }

    /// Exact k-nearest-neighbor query over the merged view: zone-sharpened
    /// candidate collection bounds the verification radius through the
    /// top-k distance heap, then the Chebyshev ball runs through the
    /// adaptive box planner and the survivors are re-ranked.
    pub(crate) fn knn(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        let key = self.curve.index_of(q);
        let mut stats = QueryStats::default();
        let radius = with_knn_heap(|heap| {
            self.knn_collect(q, key, k, window, heap, &mut stats);
            radius_from_heap(self.curve.grid(), heap, k)
        });
        let ball = BoxRegion::chebyshev_ball(self.curve.grid(), q, radius);
        // The verification ball is tiny whenever the candidate walk found a
        // tight radius, and BIGMIN's key-island overscan is proportionally
        // worst on tiny boxes — so decompose the ball exactly (zero
        // overscan) and reserve the adaptive planner for degenerate balls
        // whose decomposition cost would dominate.
        let (all, ball_stats) = if ball.volume() <= KNN_BALL_INTERVALS_CUTOFF {
            self.query_box_intervals(&ball)
        } else {
            self.query_box(&ball)
        };
        stats.add(&ball_stats);
        let all = rank_by_distance(all, q, k);
        stats.reported = all.len() as u64;
        (all, stats)
    }

    /// The pre-zone-map kNN candidate collection: fixed slot windows
    /// widened past dead slots, no block skipping, candidates gathered
    /// into a vector. Reference for differential tests and baseline
    /// benches.
    pub(crate) fn knn_candidates_plain(
        &self,
        q: Point<D>,
        key: CurveIndex,
        k: usize,
        window: usize,
        stats: &mut QueryStats,
    ) -> Vec<(u64, CurveIndex)> {
        let mut candidates: Vec<(u64, CurveIndex)> = Vec::new();
        if let Some(mem) = self.memtable {
            stats.seeks += 1;
            let mut live = 0usize;
            let mut slots = 0usize;
            for (ck, (point, slot)) in mem.iter_rev_below(key) {
                slots += 1;
                stats.scanned += 1;
                if slot.is_some() {
                    candidates.push((q.euclidean_sq(point), ck));
                    live += 1;
                }
                if live >= k && slots >= window {
                    break;
                }
            }
            live = 0;
            slots = 0;
            for (ck, (point, slot)) in mem.iter_from(key) {
                slots += 1;
                stats.scanned += 1;
                if slot.is_some() {
                    candidates.push((q.euclidean_sq(point), ck));
                    live += 1;
                }
                if live >= k && slots >= window {
                    break;
                }
            }
        }
        for (run_idx, run) in self.runs.iter().enumerate().rev() {
            stats.seeks += 1;
            let pos = run.lower_bound(key);
            let mut cur = BlockCursor::new(run.blocks());
            let mut live = 0usize;
            let mut slots = 0usize;
            let mut i = pos;
            while i > 0 && !(live >= k && slots >= window) {
                i -= 1;
                slots += 1;
                stats.scanned += 1;
                let ck = cur.key(i);
                if run.is_live_slot(i) && !self.shadowed_above(ck, run_idx) {
                    candidates.push((q.euclidean_sq(&cur.point(i)), ck));
                    live += 1;
                }
            }
            live = 0;
            slots = 0;
            let mut i = pos;
            while i < run.len() && !(live >= k && slots >= window) {
                slots += 1;
                stats.scanned += 1;
                let ck = cur.key(i);
                if run.is_live_slot(i) && !self.shadowed_above(ck, run_idx) {
                    candidates.push((q.euclidean_sq(&cur.point(i)), ck));
                    live += 1;
                }
                i += 1;
            }
            stats.blocks_decoded += cur.decodes;
        }
        candidates
    }

    /// The pre-zone-map kNN: plain candidate windows, interval-decomposed
    /// verification ball with whole-column seeks. Reference for
    /// differential tests and baseline benches.
    pub(crate) fn knn_plain(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        let key = self.curve.index_of(q);
        let mut stats = QueryStats::default();
        let mut candidates = self.knn_candidates_plain(q, key, k, window, &mut stats);
        candidates.sort_unstable();
        candidates.truncate(k);
        let radius = verification_radius(self.curve.grid(), &candidates, k);
        let ball = BoxRegion::chebyshev_ball(self.curve.grid(), q, radius);
        let (all, ball_stats) = self.query_intervals_plain(&ball.curve_intervals(self.curve));
        stats.seeks += ball_stats.seeks;
        stats.scanned += ball_stats.scanned;
        let all = rank_by_distance(all, q, k);
        stats.reported = all.len() as u64;
        (all, stats)
    }

    /// A lazy k-way merge of all levels in curve order, newest-wins, with
    /// tombstones suppressed.
    pub(crate) fn iter(&self) -> SnapshotIter<'a, D, T> {
        SnapshotIter {
            mem: self.memtable.map(|mem| mem.iter().peekable()),
            runs: self
                .runs
                .iter()
                .map(|run| RunCursor {
                    blocks: run.blocks(),
                    payloads: run.payloads(),
                    dec: Box::default(),
                    dec_block: usize::MAX,
                    pos: 0,
                })
                .collect(),
        }
    }
}

impl<'a, const D: usize, T> LevelsView<'a, D, T, ZCurve<D>> {
    /// Box query by BIGMIN-jumping key-range scans (Tropf & Herzog):
    /// zone-accelerated [`bigmin_scan`] per run (runs pruned by key range
    /// and AABB) plus an equivalent jumping scan over the memtable's key
    /// range. Z curve only; needs no per-query `O(volume)` preprocessing.
    pub(crate) fn query_box_bigmin(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let zmin = self.curve.encode(b.lo());
        let zmax = self.curve.encode(b.hi());
        let mut stats = QueryStats::default();
        let mut levels: Vec<LevelHits<'a, D, T>> =
            Vec::with_capacity(self.runs.len() + usize::from(self.memtable.is_some()));
        if let Some(mem) = self.memtable {
            let mut hits: LevelHits<'a, D, T> = Vec::new();
            Self::mem_bigmin_scan(mem, self.curve, b, &mut stats, |key, version| {
                hits.push((key, version))
            });
            levels.push(hits);
        }
        for run in self.runs.iter().rev() {
            if Self::run_outside_span(run, zmin, zmax) || run.blocks().run_disjoint(b) {
                stats.blocks_pruned += run.blocks().blocks() as u64;
                continue;
            }
            let mut hits: LevelHits<'a, D, T> = Vec::new();
            bigmin_scan(self.curve, run.blocks(), b, &mut stats, |i, key, point| {
                hits.push((key, run.payload_at(i).map(|t| (point, t))));
            });
            levels.push(hits);
        }
        Self::merge_level_hits(levels, stats)
    }

    /// The pre-zone-map BIGMIN query (no run pruning, whole-tail jump
    /// searches): reference implementation for differential tests and the
    /// baseline the benches compare against.
    pub(crate) fn query_box_bigmin_plain(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let mut stats = QueryStats::default();
        let mut merged: BTreeMap<CurveIndex, Version<'a, D, T>> = BTreeMap::new();
        if let Some(mem) = self.memtable {
            Self::mem_bigmin_scan(mem, self.curve, b, &mut stats, |key, version| {
                merged.entry(key).or_insert(version);
            });
        }
        for run in self.runs.iter().rev() {
            bigmin_scan_plain(self.curve, run.blocks(), b, &mut stats, |i, key, point| {
                merged
                    .entry(key)
                    .or_insert_with(|| run.payload_at(i).map(|t| (point, t)));
            });
        }
        Self::collect_merged(merged, stats)
    }
}

/// The canonical kNN result order: Euclidean distance to `q`, ties
/// broken by curve key. Every kNN path — and every `knn_linear` ground
/// truth, borrowed or owned — must rank with exactly this comparator.
pub(crate) fn distance_key_order<const D: usize>(
    q: &Point<D>,
    a: (&Point<D>, CurveIndex),
    b: (&Point<D>, CurveIndex),
) -> std::cmp::Ordering {
    q.euclidean_sq(a.0)
        .cmp(&q.euclidean_sq(b.0))
        .then(a.1.cmp(&b.1))
}

/// Ranks entries by [`distance_key_order`] and keeps the `k` nearest.
pub(crate) fn rank_by_distance<const D: usize, T>(
    mut all: Vec<StoreEntryRef<'_, D, T>>,
    q: Point<D>,
    k: usize,
) -> Vec<StoreEntryRef<'_, D, T>> {
    all.sort_by(|a, b| distance_key_order(&q, (&a.point, a.key), (&b.point, b.key)));
    all.truncate(k);
    all
}

/// The hull `[first.lo, last.hi]` of a sorted inclusive interval list —
/// the curve span a query over those intervals can touch. `None` for an
/// empty list; callers that need a span either way use the canonical
/// empty sentinel `(1, 0)` (lo > hi prunes everything).
pub(crate) fn interval_hull(intervals: &[Interval]) -> Option<Interval> {
    match (intervals.first(), intervals.last()) {
        (Some(&(lo, _)), Some(&(_, hi))) => Some((lo, hi)),
        _ => None,
    }
}

/// The verification radius for a kNN query: the k-th best candidate
/// distance (squared distances sorted ascending, truncated to `k`), or
/// the whole grid if fewer than `k` live candidates were found — possible
/// only when the queried structure holds fewer than `k` live records,
/// thanks to the widened candidate windows.
pub(crate) fn verification_radius<const D: usize>(
    grid: sfc_core::Grid<D>,
    candidates: &[(u64, CurveIndex)],
    k: usize,
) -> u32 {
    if candidates.len() >= k {
        (candidates[k - 1].0 as f64).sqrt().ceil() as u32
    } else {
        (grid.side() - 1) as u32
    }
}

/// The kNN machinery shared with the shard router: the scratch heap, the
/// offer primitive, and the radius bound.
pub(crate) fn with_knn_heap<R>(f: impl FnOnce(&mut BinaryHeap<u64>) -> R) -> R {
    KNN_HEAP.with(|cell| {
        let mut heap = cell.borrow_mut();
        heap.clear();
        f(&mut heap)
    })
}

/// A forward-only cursor over one run's compressed blocks and dense
/// payload column, decoding one block at a time as the merge advances.
struct RunCursor<'a, const D: usize, T> {
    blocks: &'a BlockStore<D>,
    payloads: &'a [T],
    /// Decode buffer holding block `dec_block` (`usize::MAX` = none yet).
    dec: Box<DecodedBlock<D>>,
    dec_block: usize,
    pos: usize,
}

impl<'a, const D: usize, T> RunCursor<'a, D, T> {
    /// Ensures the block holding `pos` is decoded into the buffer.
    fn fill(&mut self) {
        let block = self.blocks.block_of(self.pos);
        if self.dec_block != block {
            self.blocks.decode_into(block, &mut self.dec);
            self.dec_block = block;
        }
    }

    /// The key under the cursor, or `None` past the end of the run.
    fn peek_key(&mut self) -> Option<CurveIndex> {
        if self.pos >= self.blocks.len() {
            return None;
        }
        self.fill();
        Some(self.dec.keys[self.pos % BLOCK_SLOTS])
    }

    /// Reads the version under the cursor (`None` payload = tombstone)
    /// and advances past it.
    fn take(&mut self) -> (Point<D>, Option<&'a T>) {
        self.fill();
        let point = self.dec.point(self.pos % BLOCK_SLOTS);
        let slot = self
            .blocks
            .is_live_slot(self.pos)
            .then(|| &self.payloads[self.blocks.rank(self.pos)]);
        self.pos += 1;
        (point, slot)
    }
}

/// A peekable walk of the memtable level.
type MemIter<'a, const D: usize, T> =
    std::iter::Peekable<crate::memtable::Iter<'a, (Point<D>, Option<T>)>>;

/// Snapshot iterator over the live records of a store or snapshot in curve
/// order (see [`SfcStore::iter`](crate::SfcStore::iter) and
/// [`StoreSnapshot::iter`](crate::StoreSnapshot::iter)).
pub struct SnapshotIter<'a, const D: usize, T> {
    /// `None` when iterating a snapshot (no memtable level).
    mem: Option<MemIter<'a, D, T>>,
    /// Oldest → newest, like the store's run stack.
    runs: Vec<RunCursor<'a, D, T>>,
}

impl<const D: usize, T> fmt::Debug for SnapshotIter<'_, D, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotIter")
            .field(
                "levels",
                &(self.runs.len() + usize::from(self.mem.is_some())),
            )
            .finish_non_exhaustive()
    }
}

impl<'a, const D: usize, T> Iterator for SnapshotIter<'a, D, T> {
    type Item = StoreEntryRef<'a, D, T>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let mut min: Option<CurveIndex> = self
                .mem
                .as_mut()
                .and_then(|mem| mem.peek().map(|&(key, _)| key));
            for cursor in &mut self.runs {
                if let Some(key) = cursor.peek_key() {
                    min = Some(min.map_or(key, |m| m.min(key)));
                }
            }
            let min = min?;
            // Advance every level holding the min key; later (newer)
            // levels overwrite, and the memtable overwrites last.
            let mut winner: Option<(Point<D>, Option<&'a T>)> = None;
            for cursor in self.runs.iter_mut() {
                if cursor.peek_key() == Some(min) {
                    winner = Some(cursor.take());
                }
            }
            if let Some(mem) = self.mem.as_mut() {
                if mem.peek().map(|&(key, _)| key) == Some(min) {
                    let (_, (point, slot)) = mem.next().expect("peeked");
                    winner = Some((*point, slot.as_ref()));
                }
            }
            let (point, slot) = winner.expect("min key came from some level");
            if let Some(payload) = slot {
                return Some(StoreEntryRef {
                    key: min,
                    point,
                    payload,
                });
            }
            // Tombstone: the cell is dead in the snapshot; keep going.
        }
    }
}
