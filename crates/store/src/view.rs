//! The shared multi-level query engine.
//!
//! An [`SfcStore`](crate::SfcStore) reads merge a mutable memtable with a
//! stack of immutable runs; a [`StoreSnapshot`](crate::StoreSnapshot)
//! reads merge a frozen run stack only. Both are the *same* algorithm —
//! newest level wins, tombstones suppress older versions, per-level work
//! summed into one [`QueryStats`] — so it lives here once, expressed over
//! a [`LevelsView`]: an optional borrowed memtable plus a slice of
//! `Arc`-shared runs.

use std::collections::{btree_map, BTreeMap};
use std::fmt;
use std::sync::Arc;

use sfc_core::{CurveIndex, Point, SpaceFillingCurve, ZCurve};
use sfc_index::{bigmin, bigmin_scan, interval_scan, BoxRegion, QueryStats, SfcIndex};

use crate::store::StoreEntryRef;

/// The newest-level table: key → (cell, payload-or-tombstone).
pub(crate) type Memtable<const D: usize, T> = BTreeMap<CurveIndex, (Point<D>, Option<T>)>;

/// One immutable sorted run, shareable with snapshots.
pub(crate) type Run<const D: usize, T, C> = Arc<SfcIndex<D, Option<T>, C>>;

/// The version of a cell found at some level: `None` payload = tombstone.
pub(crate) type Version<'a, const D: usize, T> = Option<(Point<D>, &'a T)>;

/// A borrowed view of the levels of a store or snapshot: the newest level
/// (an optional memtable) over a stack of immutable runs, oldest first.
pub(crate) struct LevelsView<'a, const D: usize, T, C: SpaceFillingCurve<D>> {
    pub curve: &'a C,
    /// `None` for snapshots (whose memtable was flushed at creation).
    pub memtable: Option<&'a Memtable<D, T>>,
    /// Oldest → newest, like the store's run stack.
    pub runs: &'a [Run<D, T, C>],
}

impl<'a, const D: usize, T, C: SpaceFillingCurve<D>> LevelsView<'a, D, T, C> {
    /// The newest version of `key` across all levels, or `None` if no
    /// level mentions it. `Some(None)` means the newest version is a
    /// tombstone.
    pub(crate) fn version(&self, key: CurveIndex) -> Option<Version<'a, D, T>> {
        if let Some(mem) = self.memtable {
            if let Some((point, slot)) = mem.get(&key) {
                return Some(slot.as_ref().map(|t| (*point, t)));
            }
        }
        for run in self.runs.iter().rev() {
            if let Some(i) = run.find_key(key) {
                return Some(run.payloads()[i].as_ref().map(|t| (run.points()[i], t)));
            }
        }
        None
    }

    /// `true` iff the newest version of `key` is live.
    pub(crate) fn is_live(&self, key: CurveIndex) -> bool {
        matches!(self.version(key), Some(Some(_)))
    }

    /// `true` iff some level strictly newer than run `run_idx` holds a
    /// version of `key` (so run `run_idx`'s version is not the visible one).
    fn shadowed_above(&self, key: CurveIndex, run_idx: usize) -> bool {
        self.memtable.is_some_and(|mem| mem.contains_key(&key))
            || self.runs[run_idx + 1..]
                .iter()
                .any(|run| run.find_key(key).is_some())
    }

    /// Collects the merged per-level versions into the final result.
    fn collect_merged(
        merged: BTreeMap<CurveIndex, Version<'a, D, T>>,
        mut stats: QueryStats,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let out: Vec<StoreEntryRef<'a, D, T>> = merged
            .into_iter()
            .filter_map(|(key, version)| {
                version.map(|(point, payload)| StoreEntryRef {
                    key,
                    point,
                    payload,
                })
            })
            .collect();
        stats.reported = out.len() as u64;
        (out, stats)
    }

    /// Scans every level for keys inside the given inclusive curve-index
    /// intervals (sorted ascending, as produced by
    /// [`BoxRegion::curve_intervals`]), merging versions newest-wins.
    pub(crate) fn query_intervals(
        &self,
        intervals: &[(CurveIndex, CurveIndex)],
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let mut stats = QueryStats::default();
        let mut merged: BTreeMap<CurveIndex, Version<'a, D, T>> = BTreeMap::new();
        // Newest level first: `or_insert` keeps the first version seen.
        if let Some(mem) = self.memtable {
            for &(lo, hi) in intervals {
                stats.seeks += 1;
                for (&key, (point, slot)) in mem.range(lo..=hi) {
                    stats.scanned += 1;
                    merged
                        .entry(key)
                        .or_insert_with(|| slot.as_ref().map(|t| (*point, t)));
                }
            }
        }
        for run in self.runs.iter().rev() {
            interval_scan(run.keys(), intervals, &mut stats, |i| {
                merged
                    .entry(run.keys()[i])
                    .or_insert_with(|| run.payloads()[i].as_ref().map(|t| (run.points()[i], t)));
            });
        }
        Self::collect_merged(merged, stats)
    }

    /// Box query via exact interval decomposition (computed once, scanned
    /// against every level). Works for any curve.
    pub(crate) fn query_box_intervals(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        self.query_intervals(&b.curve_intervals(self.curve))
    }

    /// Collects live candidates for a kNN query from every level: per
    /// level, walk outward from the query key's position on both sides,
    /// **widening past tombstoned and shadowed slots** until `k` live
    /// candidates are bracketed on that side (or the level is exhausted),
    /// and always covering at least `window` slots per side.
    ///
    /// The widening is what keeps the verification radius tight under
    /// heavy deletes: a fixed slot window can be eaten entirely by
    /// tombstones, collapsing to the whole-grid fallback radius. With
    /// widening, the fallback only triggers when the view holds fewer than
    /// `k` live records in total.
    pub(crate) fn knn_candidates(
        &self,
        q: Point<D>,
        key: CurveIndex,
        k: usize,
        window: usize,
        stats: &mut QueryStats,
    ) -> Vec<(u64, CurveIndex)> {
        let mut candidates: Vec<(u64, CurveIndex)> = Vec::new();
        if let Some(mem) = self.memtable {
            stats.seeks += 1;
            let mut live = 0usize;
            let mut slots = 0usize;
            for (&ck, (point, slot)) in mem.range(..key).rev() {
                slots += 1;
                stats.scanned += 1;
                if slot.is_some() {
                    candidates.push((q.euclidean_sq(point), ck));
                    live += 1;
                }
                if live >= k && slots >= window {
                    break;
                }
            }
            live = 0;
            slots = 0;
            for (&ck, (point, slot)) in mem.range(key..) {
                slots += 1;
                stats.scanned += 1;
                if slot.is_some() {
                    candidates.push((q.euclidean_sq(point), ck));
                    live += 1;
                }
                if live >= k && slots >= window {
                    break;
                }
            }
        }
        for (run_idx, run) in self.runs.iter().enumerate().rev() {
            stats.seeks += 1;
            let pos = run.lower_bound(key);
            let mut live = 0usize;
            let mut slots = 0usize;
            let mut i = pos;
            while i > 0 && !(live >= k && slots >= window) {
                i -= 1;
                slots += 1;
                stats.scanned += 1;
                let ck = run.keys()[i];
                if run.payloads()[i].is_some() && !self.shadowed_above(ck, run_idx) {
                    candidates.push((q.euclidean_sq(&run.points()[i]), ck));
                    live += 1;
                }
            }
            live = 0;
            slots = 0;
            let mut i = pos;
            while i < run.len() && !(live >= k && slots >= window) {
                slots += 1;
                stats.scanned += 1;
                let ck = run.keys()[i];
                if run.payloads()[i].is_some() && !self.shadowed_above(ck, run_idx) {
                    candidates.push((q.euclidean_sq(&run.points()[i]), ck));
                    live += 1;
                }
                i += 1;
            }
        }
        candidates
    }

    /// Exact k-nearest-neighbor query over the merged view: widened
    /// candidate windows per level bound the verification radius, then the
    /// Chebyshev ball is interval-queried across all levels and re-ranked.
    pub(crate) fn knn(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        let key = self.curve.index_of(q);
        let mut stats = QueryStats::default();
        let mut candidates = self.knn_candidates(q, key, k, window, &mut stats);
        candidates.sort_unstable();
        candidates.truncate(k);
        let radius = verification_radius(self.curve.grid(), &candidates, k);
        let ball = BoxRegion::chebyshev_ball(self.curve.grid(), q, radius);
        let (all, ball_stats) = self.query_box_intervals(&ball);
        stats.seeks += ball_stats.seeks;
        stats.scanned += ball_stats.scanned;
        let all = rank_by_distance(all, q, k);
        stats.reported = all.len() as u64;
        (all, stats)
    }

    /// A lazy k-way merge of all levels in curve order, newest-wins, with
    /// tombstones suppressed.
    pub(crate) fn iter(&self) -> SnapshotIter<'a, D, T> {
        SnapshotIter {
            mem: self.memtable.map(|mem| mem.iter().peekable()),
            runs: self
                .runs
                .iter()
                .map(|run| RunCursor {
                    keys: run.keys(),
                    points: run.points(),
                    payloads: run.payloads(),
                    pos: 0,
                })
                .collect(),
        }
    }
}

impl<'a, const D: usize, T> LevelsView<'a, D, T, ZCurve<D>> {
    /// Box query by BIGMIN-jumping key-range scans (Tropf & Herzog):
    /// [`bigmin_scan`] per run plus an equivalent jumping scan over the
    /// memtable's key range. Z curve only; needs no per-query `O(volume)`
    /// preprocessing.
    pub(crate) fn query_box_bigmin(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let zmin = self.curve.encode(b.lo());
        let zmax = self.curve.encode(b.hi());
        let mut stats = QueryStats::default();
        let mut merged: BTreeMap<CurveIndex, Version<'a, D, T>> = BTreeMap::new();
        if let Some(mem) = self.memtable {
            // Memtable (newest level): sequential range walk with BIGMIN
            // jumps.
            stats.seeks += 1;
            let mut cur = zmin;
            'memtable: loop {
                let mut range = mem.range(cur..=zmax);
                loop {
                    let Some((&key, (point, slot))) = range.next() else {
                        break 'memtable;
                    };
                    stats.scanned += 1;
                    if b.contains(point) {
                        merged
                            .entry(key)
                            .or_insert_with(|| slot.as_ref().map(|t| (*point, t)));
                    } else {
                        match bigmin(self.curve, key, zmin, zmax) {
                            Some(next) => {
                                stats.seeks += 1;
                                cur = next;
                                break;
                            }
                            None => break 'memtable,
                        }
                    }
                }
            }
        }
        for run in self.runs.iter().rev() {
            bigmin_scan(self.curve, run.keys(), run.points(), b, &mut stats, |i| {
                merged
                    .entry(run.keys()[i])
                    .or_insert_with(|| run.payloads()[i].as_ref().map(|t| (run.points()[i], t)));
            });
        }
        Self::collect_merged(merged, stats)
    }
}

/// Ranks entries by Euclidean distance to `q` (ties broken by curve key —
/// the ordering every kNN result and every `knn_linear` ground truth in
/// this crate must share) and keeps the `k` nearest.
pub(crate) fn rank_by_distance<const D: usize, T>(
    mut all: Vec<StoreEntryRef<'_, D, T>>,
    q: Point<D>,
    k: usize,
) -> Vec<StoreEntryRef<'_, D, T>> {
    all.sort_by(|a, b| {
        q.euclidean_sq(&a.point)
            .cmp(&q.euclidean_sq(&b.point))
            .then(a.key.cmp(&b.key))
    });
    all.truncate(k);
    all
}

/// The verification radius for a kNN query: the k-th best candidate
/// distance (squared distances sorted ascending, truncated to `k`), or
/// the whole grid if fewer than `k` live candidates were found — possible
/// only when the queried structure holds fewer than `k` live records,
/// thanks to the widened candidate windows.
pub(crate) fn verification_radius<const D: usize>(
    grid: sfc_core::Grid<D>,
    candidates: &[(u64, CurveIndex)],
    k: usize,
) -> u32 {
    if candidates.len() >= k {
        (candidates[k - 1].0 as f64).sqrt().ceil() as u32
    } else {
        (grid.side() - 1) as u32
    }
}

/// A forward-only cursor over one run's borrowed columns.
struct RunCursor<'a, const D: usize, T> {
    keys: &'a [CurveIndex],
    points: &'a [Point<D>],
    payloads: &'a [Option<T>],
    pos: usize,
}

/// A peekable walk of the memtable level.
type MemIter<'a, const D: usize, T> =
    std::iter::Peekable<btree_map::Iter<'a, CurveIndex, (Point<D>, Option<T>)>>;

/// Snapshot iterator over the live records of a store or snapshot in curve
/// order (see [`SfcStore::iter`](crate::SfcStore::iter) and
/// [`StoreSnapshot::iter`](crate::StoreSnapshot::iter)).
pub struct SnapshotIter<'a, const D: usize, T> {
    /// `None` when iterating a snapshot (no memtable level).
    mem: Option<MemIter<'a, D, T>>,
    /// Oldest → newest, like the store's run stack.
    runs: Vec<RunCursor<'a, D, T>>,
}

impl<const D: usize, T> fmt::Debug for SnapshotIter<'_, D, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotIter")
            .field(
                "levels",
                &(self.runs.len() + usize::from(self.mem.is_some())),
            )
            .finish_non_exhaustive()
    }
}

impl<'a, const D: usize, T> Iterator for SnapshotIter<'a, D, T> {
    type Item = StoreEntryRef<'a, D, T>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let mut min: Option<CurveIndex> = self
                .mem
                .as_mut()
                .and_then(|mem| mem.peek().map(|(&key, _)| key));
            for cursor in &self.runs {
                if let Some(&key) = cursor.keys.get(cursor.pos) {
                    min = Some(min.map_or(key, |m| m.min(key)));
                }
            }
            let min = min?;
            // Advance every level holding the min key; later (newer)
            // levels overwrite, and the memtable overwrites last.
            let mut winner: Option<(Point<D>, Option<&'a T>)> = None;
            for cursor in self.runs.iter_mut() {
                if cursor.keys.get(cursor.pos) == Some(&min) {
                    winner = Some((
                        cursor.points[cursor.pos],
                        cursor.payloads[cursor.pos].as_ref(),
                    ));
                    cursor.pos += 1;
                }
            }
            if let Some(mem) = self.mem.as_mut() {
                if mem.peek().map(|(&key, _)| key) == Some(min) {
                    let (_, (point, slot)) = mem.next().expect("peeked");
                    winner = Some((*point, slot.as_ref()));
                }
            }
            let (point, slot) = winner.expect("min key came from some level");
            if let Some(payload) = slot {
                return Some(StoreEntryRef {
                    key: min,
                    point,
                    payload,
                });
            }
            // Tombstone: the cell is dead in the snapshot; keep going.
        }
    }
}
