//! The mutable store: memtable, run stack, compaction, merged queries.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use sfc_core::{CurveIndex, Point, SpaceFillingCurve, ZCurve};
use sfc_index::{sort_columns, BoxRegion, QueryStats, SfcIndex};

use crate::merge::merge_runs;
use crate::obs::{EngineMetrics, QueryOp, QueryTrace};
use crate::snapshot::StoreSnapshot;
use crate::view::{LevelsView, Memtable, QueryPlan, Run, SnapshotIter};

/// Memtable entries buffered before an automatic flush, unless overridden
/// with [`SfcStore::with_memtable_capacity`].
pub const DEFAULT_MEMTABLE_CAPACITY: usize = 4096;

/// A borrowed view of one live record of the store — the multi-level
/// analogue of [`sfc_index::EntryRef`]. Tombstoned and superseded versions
/// are never surfaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreEntryRef<'a, const D: usize, T> {
    /// Curve key of the record's cell.
    pub key: CurveIndex,
    /// The record's cell.
    pub point: Point<D>,
    /// User payload of the newest version.
    pub payload: &'a T,
}

/// An owned live record — what the concurrent sharded store's queries
/// return. The borrowed [`StoreEntryRef`] cannot outlive a lock-guarded
/// view, so the `&self` query paths of
/// [`ShardedSfcStore`](crate::ShardedSfcStore) clone the payload of every
/// reported hit into one of these instead (the write path already
/// requires `T: Clone`).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry<const D: usize, T> {
    /// Curve key of the record's cell.
    pub key: CurveIndex,
    /// The record's cell.
    pub point: Point<D>,
    /// User payload of the newest version.
    pub payload: T,
}

impl<const D: usize, T: Clone> StoreEntryRef<'_, D, T> {
    /// Clones the referenced payload into an owned [`StoreEntry`].
    pub fn to_owned(&self) -> StoreEntry<D, T> {
        StoreEntry {
            key: self.key,
            point: self.point,
            payload: self.payload.clone(),
        }
    }
}

/// One operation of a write batch — see [`SfcStore::apply_batch`] and
/// [`ShardedSfcStore::apply_batch`](crate::ShardedSfcStore::apply_batch).
/// Within a batch, ops on the same cell apply in submission order (the
/// last one wins), exactly as if issued one-by-one.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchOp<const D: usize, T> {
    /// Upsert the payload at the cell.
    Insert(Point<D>, T),
    /// Delete the record at the cell (tombstoning it if an older run may
    /// still hold a version).
    Delete(Point<D>),
}

impl<const D: usize, T> BatchOp<D, T> {
    /// The cell the operation targets.
    pub fn point(&self) -> &Point<D> {
        match self {
            BatchOp::Insert(p, _) | BatchOp::Delete(p) => p,
        }
    }
}

/// A mutable spatial store over SFC-sorted runs (see the crate docs for
/// the memtable / run / compaction lifecycle).
///
/// The store maps each grid cell (equivalently, each curve key — the curve
/// is a bijection) to at most one live payload. All reads see the merged,
/// newest-wins view across the memtable and every run.
///
/// Runs are held behind [`Arc`] so a [`StoreSnapshot`] can pin the current
/// run stack at zero copy cost ([`SfcStore::snapshot`]); because
/// compaction may then need to copy a pinned run out of its `Arc`, the
/// write path requires `T: Clone`.
pub struct SfcStore<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    curve: C,
    /// Newest level: key → (cell, payload-or-tombstone), sorted by key.
    memtable: Memtable<D, T>,
    /// Immutable sorted runs, oldest first; each run has unique keys and
    /// the bottom run (`runs[0]`) is always tombstone-free.
    runs: Vec<Run<D, T, C>>,
    memtable_cap: usize,
    /// Exact number of live (visible, non-tombstoned) records.
    live: usize,
    /// Cached metric handles, when observability is attached
    /// ([`SfcStore::attach_metrics`]); `None` costs one check per op.
    metrics: Option<Arc<EngineMetrics>>,
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> fmt::Debug for SfcStore<D, T, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SfcStore")
            .field("curve", &self.curve.name())
            .field("live", &self.live)
            .field("memtable_len", &self.memtable.len())
            .field("run_lens", &self.run_lens())
            .finish()
    }
}

/// Sorts a record batch into unique-key bottom-run columns, collapsing
/// records that share a cell newest-wins (later in the iterator = newer).
/// The shared bulk-load primitive of [`SfcStore`] and the sharded store.
pub(crate) fn sorted_unique_columns<const D: usize, T, C: SpaceFillingCurve<D>>(
    curve: &C,
    records: impl IntoIterator<Item = (Point<D>, T)>,
) -> (Vec<CurveIndex>, Vec<Point<D>>, Vec<Option<T>>) {
    let (points, payloads): (Vec<Point<D>>, Vec<T>) = records.into_iter().unzip();
    let (keys, points, payloads) = sort_columns(curve, points, payloads);
    // The sort is stable, so within an equal-key group the last record
    // is the newest — keep it.
    let mut run_keys: Vec<CurveIndex> = Vec::with_capacity(keys.len());
    let mut run_points: Vec<Point<D>> = Vec::with_capacity(keys.len());
    let mut run_payloads: Vec<Option<T>> = Vec::with_capacity(keys.len());
    for ((key, point), payload) in keys.into_iter().zip(points).zip(payloads) {
        if run_keys.last() == Some(&key) {
            *run_points.last_mut().expect("non-empty") = point;
            *run_payloads.last_mut().expect("non-empty") = Some(payload);
        } else {
            run_keys.push(key);
            run_points.push(point);
            run_payloads.push(Some(payload));
        }
    }
    (run_keys, run_points, run_payloads)
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> SfcStore<D, T, C> {
    /// An empty store with the default memtable capacity.
    pub fn new(curve: C) -> Self {
        Self::with_memtable_capacity(curve, DEFAULT_MEMTABLE_CAPACITY)
    }

    /// An empty store flushing its memtable at `capacity` entries.
    pub fn with_memtable_capacity(curve: C, capacity: usize) -> Self {
        Self {
            curve,
            memtable: Memtable::new(),
            runs: Vec::new(),
            memtable_cap: capacity.max(1),
            live: 0,
            metrics: None,
        }
    }

    /// Builds a store from a batch of records in one bottom run, using the
    /// same sorted-column construction as [`SfcIndex::build`]
    /// ([`sort_columns`]). Records sharing a cell collapse newest-wins
    /// (later in the iterator = newer), matching the store's update
    /// semantics.
    pub fn bulk_load(curve: C, records: impl IntoIterator<Item = (Point<D>, T)>) -> Self {
        let (keys, points, payloads) = sorted_unique_columns(&curve, records);
        Self::from_sorted_run(curve, keys, points, payloads)
    }

    /// Adopts pre-sorted columns (unique keys, all slots `Some`) as the
    /// store's single bottom run. This is the zero-copy rebuild primitive
    /// the sharded store's rebalance migration uses.
    pub(crate) fn from_sorted_run(
        curve: C,
        keys: Vec<CurveIndex>,
        points: Vec<Point<D>>,
        payloads: Vec<Option<T>>,
    ) -> Self {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "bottom run keys must be strictly increasing"
        );
        debug_assert!(
            payloads.iter().all(Option::is_some),
            "bottom run must be tombstone-free"
        );
        let live = keys.len();
        let runs = if live == 0 {
            Vec::new()
        } else {
            vec![Arc::new(SfcIndex::from_sorted_versions(
                curve.clone(),
                keys,
                points,
                payloads,
            ))]
        };
        Self {
            curve,
            memtable: Memtable::new(),
            runs,
            memtable_cap: DEFAULT_MEMTABLE_CAPACITY,
            live,
            metrics: None,
        }
    }

    /// Attaches observability: subsequent operations feed counters,
    /// sampled latency histograms, and gauges into `metrics`'s registry
    /// (see the [`obs`](crate::obs) module docs). Expects a single-shard
    /// bundle from [`EngineMetrics::for_store`]; the level gauges are
    /// primed from the store's current state.
    pub fn attach_metrics(&mut self, metrics: Arc<EngineMetrics>) {
        assert_eq!(
            metrics.shard_count(),
            1,
            "SfcStore takes a single-shard bundle (EngineMetrics::for_store)"
        );
        let s = metrics.shard(0);
        s.live.set(self.live as i64);
        s.run_count.set(self.runs.len() as i64);
        s.memtable_len.set(self.memtable.len() as i64);
        s.memtable_bytes.set(self.memtable.heap_bytes() as i64);
        self.metrics = Some(metrics);
    }

    /// The attached metrics bundle, if any.
    pub fn metrics(&self) -> Option<&Arc<EngineMetrics>> {
        self.metrics.as_ref()
    }

    /// The borrowed multi-level view all queries run against.
    pub(crate) fn view(&self) -> LevelsView<'_, D, T, C> {
        LevelsView {
            curve: &self.curve,
            memtable: Some(&self.memtable),
            runs: &self.runs,
        }
    }

    /// The curve backing this store.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` iff the store holds no live records.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Current number of buffered memtable entries (live and tombstone).
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Sizes of the immutable runs, oldest first (tombstones included).
    pub fn run_lens(&self) -> Vec<usize> {
        self.runs.iter().map(|run| run.len()).collect()
    }

    /// Compressed heap bytes per immutable run, oldest first — parallel
    /// to [`run_lens`](Self::run_lens), so dividing pairwise gives each
    /// level's bytes-per-slot figure.
    pub fn run_heap_bytes(&self) -> Vec<usize> {
        self.runs.iter().map(|run| run.heap_bytes()).collect()
    }

    /// Bytes of heap memory held by the immutable run stack's compressed
    /// blocks and dense payload columns, plus the memtable's node slabs
    /// (exact `O(1)` accounting — see
    /// [`memtable_heap_bytes`](Self::memtable_heap_bytes)). The
    /// per-record quotient is the `bytes_per_record` figure the benches
    /// track against the committed budget.
    pub fn heap_bytes(&self) -> usize {
        let runs: usize = self.runs.iter().map(|run| run.heap_bytes()).sum();
        runs + self.memtable.heap_bytes()
    }

    /// Bytes of heap memory held by the memtable structure alone (node
    /// slabs of the B+tree backing, including recycled free nodes), in
    /// `O(1)`. Also exported through the `store.memtable.bytes` gauge
    /// when metrics are attached.
    pub fn memtable_heap_bytes(&self) -> usize {
        self.memtable.heap_bytes()
    }

    /// The live payload at cell `p`, if any (newest version wins; one
    /// memtable probe plus at most one binary search per run).
    pub fn get(&self, p: Point<D>) -> Option<&T> {
        let m = self.metrics.as_deref();
        let timer = m.and_then(|m| {
            let s = m.shard(0);
            s.gets.inc();
            s.sampler.sampled_start()
        });
        let hit = if self.curve.grid().contains(&p) {
            self.view()
                .version(self.curve.index_of(p))
                .and_then(|v| v.map(|(_, t)| t))
        } else {
            None
        };
        if let (Some(m), Some(start)) = (m, timer) {
            m.shard(0).get_ns.record_since(start);
        }
        hit
    }

    /// Box query through the **adaptive planner**: per level, the planner
    /// picks between walking the box's exact curve intervals and BIGMIN
    /// key-range jumping (Morton order only) from the level's statistics —
    /// size within the box's key span, interval count, curve — and prunes
    /// levels whose key range or zone-map AABB cannot intersect the box.
    /// Results are byte-identical to either fixed strategy; see the
    /// [`view` module docs](crate::QueryPlan) for the heuristics and
    /// [`plan_box_query`](Self::plan_box_query) to inspect the choices.
    pub fn query_box(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        let Some(m) = self.metrics.as_deref() else {
            return self.view().query_box(b);
        };
        let start = Instant::now();
        let view = self.view();
        let plan = view.plan_box(b);
        let (hits, stats) = view.execute_plan(b, &plan);
        m.note_query(QueryOp::Box, start, &stats, |wall| {
            QueryTrace::from_plan("query_box", &plan, stats, wall)
        });
        (hits, stats)
    }

    /// The per-level plan [`query_box`](Self::query_box) would execute for
    /// this box right now — for observability and tuning; executing the
    /// query later plans afresh.
    pub fn plan_box_query(&self, b: &BoxRegion<D>) -> QueryPlan {
        self.view().plan_box(b)
    }

    /// Box query via exact interval decomposition, spanning all levels:
    /// the intervals are computed **once** and scanned against the
    /// memtable and every run
    /// ([`interval_scan`](sfc_index::interval_scan)); per-level work is
    /// summed and versions merge newest-wins. Works for any curve.
    pub fn query_box_intervals(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        let Some(m) = self.metrics.as_deref() else {
            return self.view().query_box_intervals(b);
        };
        let start = Instant::now();
        let (hits, stats) = self.view().query_box_intervals(b);
        m.note_query(QueryOp::Intervals, start, &stats, |wall| {
            let mut t = QueryTrace::bare("query_box_intervals", stats, wall);
            t.volume = Some(b.volume());
            t
        });
        (hits, stats)
    }

    /// Pre-zone-map interval query (whole-column seeks per interval, no
    /// run pruning). Kept as the reference the zone-mapped paths are
    /// differential-tested against and the baseline the benches measure;
    /// not part of the supported API.
    #[doc(hidden)]
    pub fn query_box_intervals_plain(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.view()
            .query_intervals_plain(&b.curve_intervals(&self.curve))
    }

    /// Pre-zone-map kNN (fixed candidate windows, interval-decomposed
    /// verification ball). Kept as the reference the zone-mapped kNN is
    /// differential-tested against and the baseline the benches measure;
    /// not part of the supported API.
    #[doc(hidden)]
    pub fn knn_plain(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        if self.is_empty() {
            return (Vec::new(), QueryStats::default());
        }
        self.view().knn_plain(q, k, window)
    }

    /// Queries all levels for keys inside the given inclusive curve-index
    /// intervals (sorted ascending), merging versions newest-wins. This is
    /// the primitive a shard router uses to hand each shard only the
    /// intervals clipped to its keyspace range.
    pub fn query_intervals(
        &self,
        intervals: &[(CurveIndex, CurveIndex)],
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        let Some(m) = self.metrics.as_deref() else {
            return self.view().query_intervals(intervals);
        };
        let start = Instant::now();
        let (hits, stats) = self.view().query_intervals(intervals);
        m.note_query(QueryOp::Intervals, start, &stats, |wall| {
            let mut t = QueryTrace::bare("query_intervals", stats, wall);
            t.intervals = Some(intervals.len());
            t
        });
        (hits, stats)
    }

    /// Exact k-nearest-neighbor query (Euclidean) over the merged view,
    /// mirroring [`SfcIndex::knn`]: candidate windows around the query's
    /// key **per level** bound the verification radius, then the Chebyshev
    /// ball is interval-queried across all levels and re-ranked.
    ///
    /// Per level and direction, the window covers at least `window` slots
    /// and **widens past tombstoned/shadowed slots** until `k` live
    /// candidates are bracketed (or the level is exhausted), so heavy
    /// deletes near `q` cannot collapse the candidate set and blow the
    /// verification ball up to the whole grid.
    pub fn knn(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        if self.is_empty() {
            return (Vec::new(), QueryStats::default());
        }
        let Some(m) = self.metrics.as_deref() else {
            return self.view().knn(q, k, window);
        };
        let start = Instant::now();
        let (hits, stats) = self.view().knn(q, k, window);
        m.note_query(QueryOp::Knn, start, &stats, |wall| {
            QueryTrace::bare("knn", stats, wall)
        });
        (hits, stats)
    }

    /// Reference k-nearest-neighbor by linear scan of the merged view
    /// (ground truth for tests).
    pub fn knn_linear(&self, q: Point<D>, k: usize) -> Vec<StoreEntryRef<'_, D, T>> {
        crate::view::rank_by_distance(self.iter().collect(), q, k)
    }

    /// A snapshot iterator over all live records in curve order: a lazy
    /// k-way merge of the memtable and every run, newest-wins, with
    /// tombstones suppressed.
    pub fn iter(&self) -> SnapshotIter<'_, D, T> {
        self.view().iter()
    }

    /// Materialises the live set into a static [`SfcIndex`] (columns built
    /// directly in key order — no re-sort). The result answers queries
    /// byte-identically to the store itself.
    pub fn to_index(&self) -> SfcIndex<D, T, C>
    where
        T: Clone,
    {
        let mut keys = Vec::with_capacity(self.live);
        let mut points = Vec::with_capacity(self.live);
        let mut payloads = Vec::with_capacity(self.live);
        for entry in self.iter() {
            keys.push(entry.key);
            points.push(entry.point);
            payloads.push(entry.payload.clone());
        }
        SfcIndex::from_sorted(self.curve.clone(), keys, points, payloads)
    }
}

impl<const D: usize, T: Clone, C: SpaceFillingCurve<D> + Clone> SfcStore<D, T, C> {
    /// Inserts or updates the record at cell `p` (an *upsert*: the store
    /// holds one live record per cell). Returns `true` if a live record
    /// was replaced.
    pub fn insert(&mut self, p: Point<D>, payload: T) -> bool {
        assert!(self.curve.grid().contains(&p), "record out of bounds: {p}");
        let timer = self.metrics.as_deref().and_then(|m| {
            let s = m.shard(0);
            s.inserts.inc();
            s.sampler.sampled_start()
        });
        let key = self.curve.index_of(p);
        let was_live = self.view().is_live(key);
        self.memtable.insert(key, (p, Some(payload)));
        if !was_live {
            self.live += 1;
        }
        self.maybe_flush();
        if let Some(m) = self.metrics.as_deref() {
            let s = m.shard(0);
            if let Some(start) = timer {
                s.insert_ns.record_since(start);
            }
            s.memtable_len.set(self.memtable.len() as i64);
            s.memtable_bytes.set(self.memtable.heap_bytes() as i64);
            s.live.set(self.live as i64);
        }
        was_live
    }

    /// Deletes the record at cell `p`, writing a tombstone if an older run
    /// may still hold a version of the cell. Returns `true` if a live
    /// record was removed.
    pub fn delete(&mut self, p: Point<D>) -> bool {
        assert!(self.curve.grid().contains(&p), "record out of bounds: {p}");
        let timer = self.metrics.as_deref().and_then(|m| {
            let s = m.shard(0);
            s.deletes.inc();
            s.sampler.sampled_start()
        });
        let key = self.curve.index_of(p);
        let was_live = self.view().is_live(key);
        if self.runs.is_empty() {
            // Nothing below the memtable: no tombstone needed.
            self.memtable.remove(&key);
        } else {
            self.memtable.insert(key, (p, None));
        }
        if was_live {
            self.live -= 1;
        }
        self.maybe_flush();
        if let Some(m) = self.metrics.as_deref() {
            let s = m.shard(0);
            if let Some(start) = timer {
                s.delete_ns.record_since(start);
            }
            s.memtable_len.set(self.memtable.len() as i64);
            s.memtable_bytes.set(self.memtable.heap_bytes() as i64);
            s.live.set(self.live as i64);
        }
        was_live
    }

    /// Applies a batch of upserts and deletes as one operation,
    /// equivalent to issuing the ops one-by-one in slice order (for a
    /// cell written twice, the later op wins) but cheaper: the batch is
    /// keyed once, stably sorted by curve index so the sorted keys ride
    /// the memtable's last-leaf insertion hint instead of paying a root
    /// descent each, and the flush-capacity check runs once at the end
    /// (the memtable may briefly overshoot its capacity mid-batch).
    pub fn apply_batch(&mut self, ops: &[BatchOp<D, T>]) {
        if ops.is_empty() {
            return;
        }
        let timer = self.metrics.as_deref().and_then(|m| {
            let s = m.shard(0);
            let inserts = ops
                .iter()
                .filter(|op| matches!(op, BatchOp::Insert(..)))
                .count() as u64;
            s.inserts.add(inserts);
            s.deletes.add(ops.len() as u64 - inserts);
            s.sampler.sampled_start()
        });
        let mut keyed: Vec<(CurveIndex, &BatchOp<D, T>)> = ops
            .iter()
            .map(|op| {
                let p = op.point();
                assert!(self.curve.grid().contains(p), "record out of bounds: {p}");
                (self.curve.index_of(*p), op)
            })
            .collect();
        // Stable sort: duplicate keys keep submission order, so the last
        // write to a cell lands last and wins.
        keyed.sort_by_key(|&(k, _)| k);
        for (key, op) in keyed {
            let was_live = self.view().is_live(key);
            match op {
                BatchOp::Insert(p, payload) => {
                    self.memtable.insert(key, (*p, Some(payload.clone())));
                    if !was_live {
                        self.live += 1;
                    }
                }
                BatchOp::Delete(p) => {
                    if self.runs.is_empty() {
                        // Nothing below the memtable: no tombstone needed
                        // (and no flush runs mid-batch to change that).
                        self.memtable.remove(&key);
                    } else {
                        self.memtable.insert(key, (*p, None));
                    }
                    if was_live {
                        self.live -= 1;
                    }
                }
            }
        }
        self.maybe_flush();
        if let Some(m) = self.metrics.as_deref() {
            let s = m.shard(0);
            if let Some(start) = timer {
                s.insert_ns.record_since(start);
            }
            s.memtable_len.set(self.memtable.len() as i64);
            s.memtable_bytes.set(self.memtable.heap_bytes() as i64);
            s.live.set(self.live as i64);
        }
    }

    fn maybe_flush(&mut self) {
        if self.memtable.len() >= self.memtable_cap {
            self.flush();
        }
    }

    /// Drains the memtable into a new immutable run (adopted sorted via
    /// [`SfcIndex::from_sorted`] — the memtable is already in key order),
    /// then restores the size-tier invariant by merging runs. A no-op on
    /// an empty memtable.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let start = Instant::now();
        let drop_tombstones = self.runs.is_empty();
        let mut keys = Vec::with_capacity(self.memtable.len());
        let mut points = Vec::with_capacity(self.memtable.len());
        let mut payloads = Vec::with_capacity(self.memtable.len());
        for (key, (point, slot)) in std::mem::take(&mut self.memtable) {
            if slot.is_none() && drop_tombstones {
                continue;
            }
            keys.push(key);
            points.push(point);
            payloads.push(slot);
        }
        if !keys.is_empty() {
            self.runs.push(Arc::new(SfcIndex::from_sorted_versions(
                self.curve.clone(),
                keys,
                points,
                payloads,
            )));
            self.maybe_merge();
        }
        if let Some(m) = self.metrics.as_deref() {
            let s = m.shard(0);
            s.flushes.inc();
            s.flush_ns.record_since(start);
            s.memtable_len.set(0);
            s.memtable_bytes.set(self.memtable.heap_bytes() as i64);
            s.run_count.set(self.runs.len() as i64);
        }
    }

    /// Size-tiered compaction: while an older run is less than twice the
    /// size of the run stacked on it, merge the pair (sequential k-way
    /// merge, newest wins). Keeps the run count at `O(log n)` and total
    /// merge work amortised `O(log n)` moves per write.
    fn maybe_merge(&mut self) {
        crate::merge::restore_size_tiers(&self.curve, &mut self.runs);
    }

    /// Major compaction: flushes the memtable and merges **all** runs into
    /// a single tombstone-free run. Afterwards queries touch exactly one
    /// level.
    pub fn compact(&mut self) {
        let start = Instant::now();
        self.flush();
        if self.runs.len() > 1 {
            let runs = std::mem::take(&mut self.runs);
            let merged = merge_runs(&self.curve, runs, true);
            if !merged.is_empty() {
                self.runs.push(Arc::new(merged));
            }
        }
        debug_assert_eq!(
            self.runs.iter().map(|run| run.len()).sum::<usize>(),
            self.live,
            "after compaction every stored record is live"
        );
        if let Some(m) = self.metrics.as_deref() {
            let s = m.shard(0);
            s.compactions.inc();
            s.compact_ns.record_since(start);
            s.run_count.set(self.runs.len() as i64);
        }
    }

    /// Freezes the store's current contents into an owned, immutable
    /// [`StoreSnapshot`]: the memtable is flushed (so the snapshot sees
    /// every write so far) and the resulting run stack is pinned by
    /// cloning its `Arc`s — `O(runs)` work, no record is copied.
    ///
    /// The snapshot keeps answering queries against exactly this state
    /// while the store absorbs further writes. Compactions that want to
    /// consume a pinned run copy it out of its `Arc` instead (the reason
    /// the write path requires `T: Clone`), leaving the snapshot intact.
    pub fn snapshot(&mut self) -> StoreSnapshot<D, T, C> {
        self.flush();
        StoreSnapshot::new(self.curve.clone(), self.runs.clone(), self.live)
    }
}

impl<const D: usize, T> SfcStore<D, T, ZCurve<D>> {
    /// Box query by BIGMIN-jumping key-range scans (Tropf & Herzog),
    /// spanning all levels: [`bigmin_scan`](sfc_index::bigmin_scan) per
    /// run plus an equivalent jumping scan over the memtable's key range,
    /// with per-level work summed and versions merged newest-wins. Z curve
    /// only; needs no per-query `O(volume)` preprocessing.
    ///
    /// The jumps are exact at the edges of the keyspace: a box containing
    /// the grid's all-max corner terminates through
    /// [`bigmin`](sfc_index::bigmin()) returning `None`, never by wrapping
    /// past the last curve index.
    pub fn query_box_bigmin(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        let Some(m) = self.metrics.as_deref() else {
            return self.view().query_box_bigmin(b);
        };
        let start = Instant::now();
        let (hits, stats) = self.view().query_box_bigmin(b);
        m.note_query(QueryOp::Bigmin, start, &stats, |wall| {
            let mut t = QueryTrace::bare("query_box_bigmin", stats, wall);
            t.volume = Some(b.volume());
            t
        });
        (hits, stats)
    }

    /// Pre-zone-map BIGMIN query (no run pruning, whole-tail jump
    /// searches). Kept as the reference the zone-mapped paths are
    /// differential-tested against and the baseline the benches measure;
    /// not part of the supported API.
    #[doc(hidden)]
    pub fn query_box_bigmin_plain(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        self.view().query_box_bigmin_plain(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use sfc_core::{Grid, HilbertCurve};

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 4);
        let p = Point::new([3, 7]);
        assert_eq!(store.get(p), None);
        assert!(!store.insert(p, 10u32));
        assert_eq!(store.get(p), Some(&10));
        assert!(store.insert(p, 20)); // update replaces
        assert_eq!(store.get(p), Some(&20));
        assert_eq!(store.len(), 1);
        assert!(store.delete(p));
        assert_eq!(store.get(p), None);
        assert!(store.is_empty());
        assert!(!store.delete(p)); // idempotent
    }

    #[test]
    fn tombstone_shadows_older_run_until_bottom_merge() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 1024);
        let p = Point::new([5, 5]);
        store.insert(p, 1u32);
        for i in 0..40u32 {
            store.insert(Point::new([i % 16, i / 16]), 100 + i);
        }
        store.flush(); // run 0 holds p
        store.delete(p);
        store.flush(); // newer run holds the tombstone
        assert_eq!(store.get(p), None, "tombstone shadows the bottom run");
        assert!(store.iter().all(|e| e.point != p));
        let total_before: usize = store.run_lens().iter().sum();
        store.compact();
        let total_after: usize = store.run_lens().iter().sum();
        assert!(total_after < total_before, "compaction reclaims the pair");
        assert_eq!(total_after, store.len());
        assert_eq!(store.get(p), None);
    }

    #[test]
    fn bulk_load_is_newest_wins() {
        let grid = Grid::<2>::new(3).unwrap();
        let p = Point::new([2, 2]);
        let store = SfcStore::bulk_load(
            ZCurve::over(grid),
            vec![(p, 1u32), (Point::new([0, 1]), 2), (p, 3)],
        );
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(p), Some(&3));
    }

    #[test]
    fn queries_match_static_index_on_live_set() {
        let grid = Grid::<2>::new(5).unwrap();
        let mut rng = rng(3);
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 16);
        for i in 0..600u32 {
            let p = grid.random_cell(&mut rng);
            if i % 5 == 4 {
                store.delete(p);
            } else {
                store.insert(p, i);
            }
        }
        assert!(store.run_lens().len() >= 2, "want a multi-run store");
        let static_index = store.to_index();
        assert_eq!(static_index.len(), store.len());
        for _ in 0..30 {
            let a = grid.random_cell(&mut rng);
            let c = grid.random_cell(&mut rng);
            let lo = Point::new([a.coord(0).min(c.coord(0)), a.coord(1).min(c.coord(1))]);
            let hi = Point::new([a.coord(0).max(c.coord(0)), a.coord(1).max(c.coord(1))]);
            let b = BoxRegion::new(lo, hi);
            let flat = |v: Vec<StoreEntryRef<'_, 2, u32>>| {
                v.into_iter()
                    .map(|e| (e.key, e.point, *e.payload))
                    .collect::<Vec<_>>()
            };
            let flat_idx = |v: Vec<sfc_index::EntryRef<'_, 2, u32>>| {
                v.into_iter()
                    .map(|e| (e.key, e.point, *e.payload))
                    .collect::<Vec<_>>()
            };
            let (bm, _) = store.query_box_bigmin(&b);
            let (iv, iv_stats) = store.query_box_intervals(&b);
            let (expected, _) = static_index.query_box_bigmin(&b);
            assert_eq!(flat(bm), flat_idx(expected.clone()));
            assert_eq!(flat(iv), flat_idx(expected));
            assert_eq!(iv_stats.reported, iv_stats.reported.min(iv_stats.scanned));
        }
    }

    #[test]
    fn knn_matches_linear_over_merged_view() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut rng = rng(7);
        let mut store = SfcStore::with_memtable_capacity(HilbertCurve::over(grid), 8);
        for i in 0..200u32 {
            let p = grid.random_cell(&mut rng);
            if i % 7 == 6 {
                store.delete(p);
            } else {
                store.insert(p, i);
            }
        }
        for _ in 0..25 {
            let q = grid.random_cell(&mut rng);
            for k in [1usize, 4, 9] {
                let (got, stats) = store.knn(q, k, 3);
                let want = store.knn_linear(q, k);
                let gd: Vec<u64> = got.iter().map(|e| q.euclidean_sq(&e.point)).collect();
                let wd: Vec<u64> = want.iter().map(|e| q.euclidean_sq(&e.point)).collect();
                assert_eq!(gd, wd, "k={k} q={q}");
                assert_eq!(stats.reported as usize, k.min(store.len()));
            }
        }
    }

    #[test]
    fn knn_windows_widen_past_tombstones() {
        // Regression for the candidate-window under-collection: every cell
        // near the query point is deleted across several levels, so a
        // fixed ±window of slots sees only tombstones. The widened windows
        // must still bracket k live candidates per level, keeping the
        // verification ball small — without the fix the radius fell back
        // to the whole grid, scanning every live record.
        let grid = Grid::<2>::new(6).unwrap(); // 64×64
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 32);
        for x in 0..64u32 {
            for y in 0..64u32 {
                store.insert(Point::new([x, y]), x * 64 + y);
            }
        }
        store.flush();
        let q = Point::new([20, 20]);
        // Delete a Chebyshev-radius-5 neighborhood around q, spread across
        // memtable and freshly flushed runs so tombstones shadow the
        // bottom run from multiple levels.
        let mut deleted = 0u32;
        for cell in BoxRegion::chebyshev_ball(grid, q, 5).cells() {
            store.delete(cell);
            deleted += 1;
            if deleted.is_multiple_of(40) {
                store.flush();
            }
        }
        for k in [1usize, 3, 8] {
            for window in [1usize, 2, 4] {
                let (got, stats) = store.knn(q, k, window);
                let want = store.knn_linear(q, k);
                let gd: Vec<u64> = got.iter().map(|e| q.euclidean_sq(&e.point)).collect();
                let wd: Vec<u64> = want.iter().map(|e| q.euclidean_sq(&e.point)).collect();
                assert_eq!(gd, wd, "true neighbor dropped: k={k} window={window}");
                // The widened windows bound the verification ball: without
                // widening the ball degenerated to the whole 64×64 grid
                // and scanned all ~4k live records.
                assert!(
                    stats.scanned < 1500,
                    "verification ball degenerated: scanned {} (k={k} window={window})",
                    stats.scanned
                );
            }
        }
    }

    #[test]
    fn query_box_bigmin_at_end_of_keyspace_full_resolution() {
        // Regression: a box containing the all-max corner of a
        // full-resolution grid (2^32 × 2^32 — curve keys occupy all 64
        // bits) must terminate cleanly, not wrap past the last curve
        // index. Exercises both the memtable jumping scan and the per-run
        // BIGMIN scan.
        let grid = Grid::<2>::new(32).unwrap();
        let z = ZCurve::over(grid);
        let max = u32::MAX;
        let b = BoxRegion::new(Point::new([max - 2, max - 2]), Point::new([max, max]));
        assert_eq!(z.encode(b.hi()), grid.n() - 1, "all-max corner is last key");
        // Memtable-only store: the jumping memtable scan path.
        let mut mem_store = SfcStore::with_memtable_capacity(z, 1 << 20);
        // Run-backed store: the bigmin_scan path.
        let mut run_store = SfcStore::with_memtable_capacity(z, 4);
        for dx in 0..6u32 {
            for dy in 0..6u32 {
                let p = Point::new([max - dx, max - dy]);
                mem_store.insert(p, dx * 10 + dy);
                run_store.insert(p, dx * 10 + dy);
            }
        }
        assert!(mem_store.run_lens().is_empty());
        assert!(!run_store.run_lens().is_empty());
        for store in [&mem_store, &run_store] {
            let (hits, _) = store.query_box_bigmin(&b);
            assert_eq!(hits.len(), 9, "3×3 corner cells");
            let (iv, _) = store.query_box_intervals(&b);
            assert_eq!(
                hits.iter().map(|e| e.key).collect::<Vec<_>>(),
                iv.iter().map(|e| e.key).collect::<Vec<_>>(),
                "bigmin disagrees with interval strategy at keyspace end"
            );
        }
    }

    #[test]
    fn snapshot_iter_is_sorted_unique_and_live() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut rng = rng(11);
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 8);
        for i in 0..300u32 {
            let p = grid.random_cell(&mut rng);
            if rng.gen_range(0..4u32) == 0 {
                store.delete(p);
            } else {
                store.insert(p, i);
            }
        }
        let entries: Vec<(CurveIndex, u32)> = store.iter().map(|e| (e.key, *e.payload)).collect();
        assert_eq!(entries.len(), store.len());
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0, "strictly increasing keys");
        }
        for (key, payload) in &entries {
            let p = store.curve().point_of(*key);
            assert_eq!(store.get(p), Some(payload));
        }
    }

    #[test]
    fn run_sizes_keep_the_tier_invariant() {
        let grid = Grid::<2>::new(6).unwrap();
        let mut rng = rng(13);
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 32);
        for i in 0..3_000u32 {
            store.insert(grid.random_cell(&mut rng), i);
        }
        let lens = store.run_lens();
        for w in lens.windows(2) {
            assert!(w[0] >= 2 * w[1], "size tiers violated: {lens:?}");
        }
        assert!(lens.len() <= 8, "too many runs: {lens:?}");
    }

    #[test]
    fn planner_matches_both_fixed_strategies_and_plain_paths() {
        let grid = Grid::<2>::new(6).unwrap(); // 64×64
        let mut rng = rng(21);
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 32);
        for i in 0..2_500u32 {
            let p = grid.random_cell(&mut rng);
            if i % 6 == 5 {
                store.delete(p);
            } else {
                store.insert(p, i);
            }
        }
        assert!(store.run_lens().len() >= 2, "want a multi-run store");
        let flat = |v: Vec<StoreEntryRef<'_, 2, u32>>| {
            v.into_iter()
                .map(|e| (e.key, e.point, *e.payload))
                .collect::<Vec<_>>()
        };
        for _ in 0..40 {
            let a = grid.random_cell(&mut rng);
            let c = grid.random_cell(&mut rng);
            let lo = Point::new([a.coord(0).min(c.coord(0)), a.coord(1).min(c.coord(1))]);
            let hi = Point::new([a.coord(0).max(c.coord(0)), a.coord(1).max(c.coord(1))]);
            let b = BoxRegion::new(lo, hi);
            let want = flat(store.query_box_intervals(&b).0);
            assert_eq!(flat(store.query_box(&b).0), want, "planner vs intervals");
            assert_eq!(
                flat(store.query_box_bigmin(&b).0),
                want,
                "bigmin vs intervals"
            );
            assert_eq!(
                flat(store.query_box_intervals_plain(&b).0),
                want,
                "plain intervals drifted"
            );
            assert_eq!(
                flat(store.query_box_bigmin_plain(&b).0),
                want,
                "plain bigmin drifted"
            );
            let q = grid.random_cell(&mut rng);
            assert_eq!(
                flat(store.knn(q, 5, 3).0),
                flat(store.knn_plain(q, 5, 3).0),
                "knn vs knn_plain at {q}"
            );
        }
    }

    #[test]
    fn planner_adapts_decomposition_to_volume_and_levels_to_run_size() {
        let grid = Grid::<2>::new(10).unwrap(); // 1024×1024
        let mut rng = rng(33);
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 256);
        for i in 0..20_000u32 {
            store.insert(grid.random_cell(&mut rng), i);
        }
        store.flush();
        assert!(store.run_lens().len() >= 2, "want a multi-run store");
        // A tiny box decomposes; every non-pruned run picks a strategy.
        let small = BoxRegion::new(Point::new([100, 100]), Point::new([107, 107]));
        let plan = store.plan_box_query(&small);
        assert_eq!(plan.volume, 64);
        let count = plan.interval_count().expect("tiny Z boxes decompose");
        assert!(count >= 1);
        assert_eq!(plan.runs.len(), store.run_lens().len());
        // A bigger box skips decomposition outright: all levels jump.
        let huge = BoxRegion::new(Point::new([0, 0]), Point::new([767, 767]));
        let plan = store.plan_box_query(&huge);
        assert!(plan.interval_count().is_none(), "oversized box decomposed");
        assert!(plan
            .runs
            .iter()
            .all(|s| *s == crate::LevelStrategy::Bigmin || *s == crate::LevelStrategy::Pruned));
        // A box outside every run's AABB prunes everything (records only
        // populate random cells; an empty corner may not exist — so build
        // one deliberately).
        let mut corner_store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 8);
        for i in 0..64u32 {
            corner_store.insert(Point::new([i % 8, i / 8]), i);
        }
        corner_store.flush();
        let far = BoxRegion::new(Point::new([900, 900]), Point::new([905, 905]));
        let plan = corner_store.plan_box_query(&far);
        assert!(
            plan.runs.iter().all(|s| *s == crate::LevelStrategy::Pruned),
            "far box must prune every run: {plan:?}"
        );
        let (hits, stats) = corner_store.query_box(&far);
        assert!(hits.is_empty());
        assert_eq!(stats.scanned, 0, "pruned runs must not scan");
        assert!(stats.blocks_pruned > 0, "pruning must be observable");
    }

    #[test]
    fn empty_store_behaviour() {
        let grid = Grid::<2>::new(3).unwrap();
        let mut store: SfcStore<2, u32, _> = SfcStore::new(ZCurve::over(grid));
        assert!(store.is_empty());
        assert_eq!(store.iter().count(), 0);
        let b = BoxRegion::new(Point::new([0, 0]), Point::new([7, 7]));
        assert!(store.query_box_intervals(&b).0.is_empty());
        assert!(store.query_box_bigmin(&b).0.is_empty());
        assert!(store.knn(Point::new([1, 1]), 3, 2).0.is_empty());
        store.flush();
        store.compact();
        assert!(store.is_empty());
    }
}
