//! The mutable store: memtable, run stack, compaction, merged queries.

use std::collections::{btree_map, BTreeMap};
use std::fmt;

use sfc_core::{CurveIndex, Point, SpaceFillingCurve, ZCurve};
use sfc_index::{
    bigmin, bigmin_scan, interval_scan, sort_columns, BoxRegion, QueryStats, SfcIndex,
};

use crate::merge::merge_runs;

/// Memtable entries buffered before an automatic flush, unless overridden
/// with [`SfcStore::with_memtable_capacity`].
pub const DEFAULT_MEMTABLE_CAPACITY: usize = 4096;

/// A borrowed view of one live record of the store — the multi-level
/// analogue of [`sfc_index::EntryRef`]. Tombstoned and superseded versions
/// are never surfaced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreEntryRef<'a, const D: usize, T> {
    /// Curve key of the record's cell.
    pub key: CurveIndex,
    /// The record's cell.
    pub point: Point<D>,
    /// User payload of the newest version.
    pub payload: &'a T,
}

/// The version of a cell found at some level: `None` payload = tombstone.
type Version<'a, const D: usize, T> = Option<(Point<D>, &'a T)>;

/// A mutable spatial store over SFC-sorted runs (see the crate docs for
/// the memtable / run / compaction lifecycle).
///
/// The store maps each grid cell (equivalently, each curve key — the curve
/// is a bijection) to at most one live payload. All reads see the merged,
/// newest-wins view across the memtable and every run.
pub struct SfcStore<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    curve: C,
    /// Newest level: key → (cell, payload-or-tombstone), sorted by key.
    memtable: BTreeMap<CurveIndex, (Point<D>, Option<T>)>,
    /// Immutable sorted runs, oldest first; each run has unique keys and
    /// the bottom run (`runs[0]`) is always tombstone-free.
    runs: Vec<SfcIndex<D, Option<T>, C>>,
    memtable_cap: usize,
    /// Exact number of live (visible, non-tombstoned) records.
    live: usize,
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> fmt::Debug for SfcStore<D, T, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SfcStore")
            .field("curve", &self.curve.name())
            .field("live", &self.live)
            .field("memtable_len", &self.memtable.len())
            .field("run_lens", &self.run_lens())
            .finish()
    }
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> SfcStore<D, T, C> {
    /// An empty store with the default memtable capacity.
    pub fn new(curve: C) -> Self {
        Self::with_memtable_capacity(curve, DEFAULT_MEMTABLE_CAPACITY)
    }

    /// An empty store flushing its memtable at `capacity` entries.
    pub fn with_memtable_capacity(curve: C, capacity: usize) -> Self {
        Self {
            curve,
            memtable: BTreeMap::new(),
            runs: Vec::new(),
            memtable_cap: capacity.max(1),
            live: 0,
        }
    }

    /// Builds a store from a batch of records in one bottom run, using the
    /// same sorted-column construction as [`SfcIndex::build`]
    /// ([`sort_columns`]). Records sharing a cell collapse newest-wins
    /// (later in the iterator = newer), matching the store's update
    /// semantics.
    pub fn bulk_load(curve: C, records: impl IntoIterator<Item = (Point<D>, T)>) -> Self {
        let (points, payloads): (Vec<Point<D>>, Vec<T>) = records.into_iter().unzip();
        let (keys, points, payloads) = sort_columns(&curve, points, payloads);
        // The sort is stable, so within an equal-key group the last record
        // is the newest — keep it.
        let mut run_keys: Vec<CurveIndex> = Vec::with_capacity(keys.len());
        let mut run_points: Vec<Point<D>> = Vec::with_capacity(keys.len());
        let mut run_payloads: Vec<Option<T>> = Vec::with_capacity(keys.len());
        for ((key, point), payload) in keys.into_iter().zip(points).zip(payloads) {
            if run_keys.last() == Some(&key) {
                *run_points.last_mut().expect("non-empty") = point;
                *run_payloads.last_mut().expect("non-empty") = Some(payload);
            } else {
                run_keys.push(key);
                run_points.push(point);
                run_payloads.push(Some(payload));
            }
        }
        let live = run_keys.len();
        let runs = if live == 0 {
            Vec::new()
        } else {
            vec![SfcIndex::from_sorted(
                curve.clone(),
                run_keys,
                run_points,
                run_payloads,
            )]
        };
        Self {
            curve,
            memtable: BTreeMap::new(),
            runs,
            memtable_cap: DEFAULT_MEMTABLE_CAPACITY,
            live,
        }
    }

    /// The curve backing this store.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` iff the store holds no live records.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Current number of buffered memtable entries (live and tombstone).
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Sizes of the immutable runs, oldest first (tombstones included).
    pub fn run_lens(&self) -> Vec<usize> {
        self.runs.iter().map(SfcIndex::len).collect()
    }

    /// Inserts or updates the record at cell `p` (an *upsert*: the store
    /// holds one live record per cell). Returns `true` if a live record
    /// was replaced.
    pub fn insert(&mut self, p: Point<D>, payload: T) -> bool {
        assert!(self.curve.grid().contains(&p), "record out of bounds: {p}");
        let key = self.curve.index_of(p);
        let was_live = self.is_live(key);
        self.memtable.insert(key, (p, Some(payload)));
        if !was_live {
            self.live += 1;
        }
        self.maybe_flush();
        was_live
    }

    /// Deletes the record at cell `p`, writing a tombstone if an older run
    /// may still hold a version of the cell. Returns `true` if a live
    /// record was removed.
    pub fn delete(&mut self, p: Point<D>) -> bool {
        assert!(self.curve.grid().contains(&p), "record out of bounds: {p}");
        let key = self.curve.index_of(p);
        let was_live = self.is_live(key);
        if self.runs.is_empty() {
            // Nothing below the memtable: no tombstone needed.
            self.memtable.remove(&key);
        } else {
            self.memtable.insert(key, (p, None));
        }
        if was_live {
            self.live -= 1;
        }
        self.maybe_flush();
        was_live
    }

    /// The live payload at cell `p`, if any (newest version wins; one
    /// memtable probe plus at most one binary search per run).
    pub fn get(&self, p: Point<D>) -> Option<&T> {
        if !self.curve.grid().contains(&p) {
            return None;
        }
        self.version(self.curve.index_of(p))
            .and_then(|v| v.map(|(_, t)| t))
    }

    /// The newest version of `key` across all levels, or `None` if no
    /// level mentions it. `Some(None)` means the newest version is a
    /// tombstone.
    fn version(&self, key: CurveIndex) -> Option<Version<'_, D, T>> {
        if let Some((point, slot)) = self.memtable.get(&key) {
            return Some(slot.as_ref().map(|t| (*point, t)));
        }
        for run in self.runs.iter().rev() {
            if let Some(i) = run.find_key(key) {
                return Some(run.payloads()[i].as_ref().map(|t| (run.points()[i], t)));
            }
        }
        None
    }

    fn is_live(&self, key: CurveIndex) -> bool {
        matches!(self.version(key), Some(Some(_)))
    }

    /// `true` iff some level strictly newer than run `run_idx` holds a
    /// version of `key` (so run `run_idx`'s version is not the visible one).
    fn shadowed_above(&self, key: CurveIndex, run_idx: usize) -> bool {
        self.memtable.contains_key(&key)
            || self.runs[run_idx + 1..]
                .iter()
                .any(|run| run.find_key(key).is_some())
    }

    fn maybe_flush(&mut self) {
        if self.memtable.len() >= self.memtable_cap {
            self.flush();
        }
    }

    /// Drains the memtable into a new immutable run (adopted sorted via
    /// [`SfcIndex::from_sorted`] — the memtable is already in key order),
    /// then restores the size-tier invariant by merging runs. A no-op on
    /// an empty memtable.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let drop_tombstones = self.runs.is_empty();
        let mut keys = Vec::with_capacity(self.memtable.len());
        let mut points = Vec::with_capacity(self.memtable.len());
        let mut payloads = Vec::with_capacity(self.memtable.len());
        for (key, (point, slot)) in std::mem::take(&mut self.memtable) {
            if slot.is_none() && drop_tombstones {
                continue;
            }
            keys.push(key);
            points.push(point);
            payloads.push(slot);
        }
        if !keys.is_empty() {
            self.runs.push(SfcIndex::from_sorted(
                self.curve.clone(),
                keys,
                points,
                payloads,
            ));
            self.maybe_merge();
        }
    }

    /// Size-tiered compaction: while an older run is less than twice the
    /// size of the run stacked on it, merge the pair (sequential k-way
    /// merge, newest wins). Keeps the run count at `O(log n)` and total
    /// merge work amortised `O(log n)` moves per write.
    fn maybe_merge(&mut self) {
        while self.runs.len() >= 2 {
            let n = self.runs.len();
            if self.runs[n - 2].len() < 2 * self.runs[n - 1].len() {
                let newer = self.runs.pop().expect("len >= 2");
                let older = self.runs.pop().expect("len >= 2");
                let drop_tombstones = self.runs.is_empty();
                self.runs
                    .push(merge_runs(&self.curve, vec![older, newer], drop_tombstones));
            } else {
                break;
            }
        }
        if self.runs.len() == 1 && self.runs[0].is_empty() {
            self.runs.clear();
        }
    }

    /// Major compaction: flushes the memtable and merges **all** runs into
    /// a single tombstone-free run. Afterwards queries touch exactly one
    /// level.
    pub fn compact(&mut self) {
        self.flush();
        if self.runs.len() > 1 {
            let runs = std::mem::take(&mut self.runs);
            let merged = merge_runs(&self.curve, runs, true);
            if !merged.is_empty() {
                self.runs.push(merged);
            }
        }
        debug_assert_eq!(
            self.runs.iter().map(SfcIndex::len).sum::<usize>(),
            self.live,
            "after compaction every stored record is live"
        );
    }

    /// Collects the merged per-level versions into the final result.
    fn collect_merged<'a>(
        merged: BTreeMap<CurveIndex, Version<'a, D, T>>,
        mut stats: QueryStats,
    ) -> (Vec<StoreEntryRef<'a, D, T>>, QueryStats) {
        let out: Vec<StoreEntryRef<'a, D, T>> = merged
            .into_iter()
            .filter_map(|(key, version)| {
                version.map(|(point, payload)| StoreEntryRef {
                    key,
                    point,
                    payload,
                })
            })
            .collect();
        stats.reported = out.len() as u64;
        (out, stats)
    }

    /// Box query via exact interval decomposition, spanning all levels:
    /// the intervals are computed **once** and scanned against the
    /// memtable and every run ([`interval_scan`]); per-level work is
    /// summed and versions merge newest-wins. Works for any curve.
    pub fn query_box_intervals(
        &self,
        b: &BoxRegion<D>,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        let intervals = b.curve_intervals(&self.curve);
        let mut stats = QueryStats::default();
        let mut merged: BTreeMap<CurveIndex, Version<'_, D, T>> = BTreeMap::new();
        // Newest level first: `or_insert` keeps the first version seen.
        for &(lo, hi) in &intervals {
            stats.seeks += 1;
            for (&key, (point, slot)) in self.memtable.range(lo..=hi) {
                stats.scanned += 1;
                merged
                    .entry(key)
                    .or_insert_with(|| slot.as_ref().map(|t| (*point, t)));
            }
        }
        for run in self.runs.iter().rev() {
            interval_scan(run.keys(), &intervals, &mut stats, |i| {
                merged
                    .entry(run.keys()[i])
                    .or_insert_with(|| run.payloads()[i].as_ref().map(|t| (run.points()[i], t)));
            });
        }
        Self::collect_merged(merged, stats)
    }

    /// Exact k-nearest-neighbor query (Euclidean) over the merged view,
    /// mirroring [`SfcIndex::knn`]: a candidate window around the query's
    /// key **per level** (shadowed and tombstoned candidates discarded)
    /// bounds the verification radius, then the Chebyshev ball is interval-
    /// queried across all levels and re-ranked.
    pub fn knn(
        &self,
        q: Point<D>,
        k: usize,
        window: usize,
    ) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        assert!(k >= 1, "k must be at least 1");
        if self.is_empty() {
            return (Vec::new(), QueryStats::default());
        }
        let key = self.curve.index_of(q);
        let mut stats = QueryStats::default();
        let mut candidates: Vec<(u64, CurveIndex)> = Vec::new();
        stats.seeks += 1;
        for (&ck, (point, slot)) in self.memtable.range(..key).rev().take(window) {
            stats.scanned += 1;
            if slot.is_some() {
                candidates.push((q.euclidean_sq(point), ck));
            }
        }
        for (&ck, (point, slot)) in self.memtable.range(key..).take(window) {
            stats.scanned += 1;
            if slot.is_some() {
                candidates.push((q.euclidean_sq(point), ck));
            }
        }
        for (run_idx, run) in self.runs.iter().enumerate().rev() {
            stats.seeks += 1;
            let pos = run.lower_bound(key);
            let lo = pos.saturating_sub(window);
            let hi = (pos + window).min(run.len());
            for i in lo..hi {
                stats.scanned += 1;
                let ck = run.keys()[i];
                if run.payloads()[i].is_none() || self.shadowed_above(ck, run_idx) {
                    continue;
                }
                candidates.push((q.euclidean_sq(&run.points()[i]), ck));
            }
        }
        candidates.sort_unstable();
        candidates.truncate(k);
        // Verification radius: the k-th live candidate distance, or the
        // whole grid if the windows produced fewer than k live candidates.
        let radius = if candidates.len() == k {
            (candidates[k - 1].0 as f64).sqrt().ceil() as u32
        } else {
            (self.curve.grid().side() - 1) as u32
        };
        let ball = BoxRegion::chebyshev_ball(self.curve.grid(), q, radius);
        let (mut all, ball_stats) = self.query_box_intervals(&ball);
        stats.seeks += ball_stats.seeks;
        stats.scanned += ball_stats.scanned;
        all.sort_by(|a, b| {
            q.euclidean_sq(&a.point)
                .cmp(&q.euclidean_sq(&b.point))
                .then(a.key.cmp(&b.key))
        });
        all.truncate(k);
        stats.reported = all.len() as u64;
        (all, stats)
    }

    /// Reference k-nearest-neighbor by linear scan of the merged view
    /// (ground truth for tests).
    pub fn knn_linear(&self, q: Point<D>, k: usize) -> Vec<StoreEntryRef<'_, D, T>> {
        let mut all: Vec<StoreEntryRef<'_, D, T>> = self.iter().collect();
        all.sort_by(|a, b| {
            q.euclidean_sq(&a.point)
                .cmp(&q.euclidean_sq(&b.point))
                .then(a.key.cmp(&b.key))
        });
        all.truncate(k);
        all
    }

    /// A snapshot iterator over all live records in curve order: a lazy
    /// k-way merge of the memtable and every run, newest-wins, with
    /// tombstones suppressed.
    pub fn iter(&self) -> SnapshotIter<'_, D, T> {
        SnapshotIter {
            mem: self.memtable.iter().peekable(),
            runs: self
                .runs
                .iter()
                .map(|run| RunCursor {
                    keys: run.keys(),
                    points: run.points(),
                    payloads: run.payloads(),
                    pos: 0,
                })
                .collect(),
        }
    }

    /// Materialises the live set into a static [`SfcIndex`] (columns built
    /// directly in key order — no re-sort). The result answers queries
    /// byte-identically to the store itself.
    pub fn to_index(&self) -> SfcIndex<D, T, C>
    where
        T: Clone,
    {
        let mut keys = Vec::with_capacity(self.live);
        let mut points = Vec::with_capacity(self.live);
        let mut payloads = Vec::with_capacity(self.live);
        for entry in self.iter() {
            keys.push(entry.key);
            points.push(entry.point);
            payloads.push(entry.payload.clone());
        }
        SfcIndex::from_sorted(self.curve.clone(), keys, points, payloads)
    }
}

impl<const D: usize, T> SfcStore<D, T, ZCurve<D>> {
    /// Box query by BIGMIN-jumping key-range scans (Tropf & Herzog),
    /// spanning all levels: [`bigmin_scan`] per run plus an equivalent
    /// jumping scan over the memtable's key range, with per-level work
    /// summed and versions merged newest-wins. Z curve only; needs no
    /// per-query `O(volume)` preprocessing.
    pub fn query_box_bigmin(&self, b: &BoxRegion<D>) -> (Vec<StoreEntryRef<'_, D, T>>, QueryStats) {
        let zmin = self.curve.encode(b.lo());
        let zmax = self.curve.encode(b.hi());
        let mut stats = QueryStats::default();
        let mut merged: BTreeMap<CurveIndex, Version<'_, D, T>> = BTreeMap::new();
        // Memtable (newest level): sequential range walk with BIGMIN jumps.
        stats.seeks += 1;
        let mut cur = zmin;
        'memtable: loop {
            let mut range = self.memtable.range(cur..=zmax);
            loop {
                let Some((&key, (point, slot))) = range.next() else {
                    break 'memtable;
                };
                stats.scanned += 1;
                if b.contains(point) {
                    merged
                        .entry(key)
                        .or_insert_with(|| slot.as_ref().map(|t| (*point, t)));
                } else {
                    match bigmin(&self.curve, key, zmin, zmax) {
                        Some(next) => {
                            stats.seeks += 1;
                            cur = next;
                            break;
                        }
                        None => break 'memtable,
                    }
                }
            }
        }
        for run in self.runs.iter().rev() {
            bigmin_scan(&self.curve, run.keys(), run.points(), b, &mut stats, |i| {
                merged
                    .entry(run.keys()[i])
                    .or_insert_with(|| run.payloads()[i].as_ref().map(|t| (run.points()[i], t)));
            });
        }
        Self::collect_merged(merged, stats)
    }
}

/// A forward-only cursor over one run's borrowed columns.
struct RunCursor<'a, const D: usize, T> {
    keys: &'a [CurveIndex],
    points: &'a [Point<D>],
    payloads: &'a [Option<T>],
    pos: usize,
}

/// Snapshot iterator over the live records of an [`SfcStore`] in curve
/// order (see [`SfcStore::iter`]).
pub struct SnapshotIter<'a, const D: usize, T> {
    mem: std::iter::Peekable<btree_map::Iter<'a, CurveIndex, (Point<D>, Option<T>)>>,
    /// Oldest → newest, like the store's run stack.
    runs: Vec<RunCursor<'a, D, T>>,
}

impl<const D: usize, T> fmt::Debug for SnapshotIter<'_, D, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotIter")
            .field("levels", &(self.runs.len() + 1))
            .finish_non_exhaustive()
    }
}

impl<'a, const D: usize, T> Iterator for SnapshotIter<'a, D, T> {
    type Item = StoreEntryRef<'a, D, T>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let mut min: Option<CurveIndex> = self.mem.peek().map(|(&key, _)| key);
            for cursor in &self.runs {
                if let Some(&key) = cursor.keys.get(cursor.pos) {
                    min = Some(min.map_or(key, |m| m.min(key)));
                }
            }
            let min = min?;
            // Advance every level holding the min key; later (newer)
            // levels overwrite, and the memtable overwrites last.
            let mut winner: Option<(Point<D>, Option<&'a T>)> = None;
            for cursor in self.runs.iter_mut() {
                if cursor.keys.get(cursor.pos) == Some(&min) {
                    winner = Some((
                        cursor.points[cursor.pos],
                        cursor.payloads[cursor.pos].as_ref(),
                    ));
                    cursor.pos += 1;
                }
            }
            if self.mem.peek().map(|(&key, _)| key) == Some(min) {
                let (_, (point, slot)) = self.mem.next().expect("peeked");
                winner = Some((*point, slot.as_ref()));
            }
            let (point, slot) = winner.expect("min key came from some level");
            if let Some(payload) = slot {
                return Some(StoreEntryRef {
                    key: min,
                    point,
                    payload,
                });
            }
            // Tombstone: the cell is dead in the snapshot; keep going.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use sfc_core::{Grid, HilbertCurve};

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 4);
        let p = Point::new([3, 7]);
        assert_eq!(store.get(p), None);
        assert!(!store.insert(p, 10u32));
        assert_eq!(store.get(p), Some(&10));
        assert!(store.insert(p, 20)); // update replaces
        assert_eq!(store.get(p), Some(&20));
        assert_eq!(store.len(), 1);
        assert!(store.delete(p));
        assert_eq!(store.get(p), None);
        assert!(store.is_empty());
        assert!(!store.delete(p)); // idempotent
    }

    #[test]
    fn tombstone_shadows_older_run_until_bottom_merge() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 1024);
        let p = Point::new([5, 5]);
        store.insert(p, 1u32);
        for i in 0..40u32 {
            store.insert(Point::new([i % 16, i / 16]), 100 + i);
        }
        store.flush(); // run 0 holds p
        store.delete(p);
        store.flush(); // newer run holds the tombstone
        assert_eq!(store.get(p), None, "tombstone shadows the bottom run");
        assert!(store.iter().all(|e| e.point != p));
        let total_before: usize = store.run_lens().iter().sum();
        store.compact();
        let total_after: usize = store.run_lens().iter().sum();
        assert!(total_after < total_before, "compaction reclaims the pair");
        assert_eq!(total_after, store.len());
        assert_eq!(store.get(p), None);
    }

    #[test]
    fn bulk_load_is_newest_wins() {
        let grid = Grid::<2>::new(3).unwrap();
        let p = Point::new([2, 2]);
        let store = SfcStore::bulk_load(
            ZCurve::over(grid),
            vec![(p, 1u32), (Point::new([0, 1]), 2), (p, 3)],
        );
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(p), Some(&3));
    }

    #[test]
    fn queries_match_static_index_on_live_set() {
        let grid = Grid::<2>::new(5).unwrap();
        let mut rng = rng(3);
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 16);
        for i in 0..600u32 {
            let p = grid.random_cell(&mut rng);
            if i % 5 == 4 {
                store.delete(p);
            } else {
                store.insert(p, i);
            }
        }
        assert!(store.run_lens().len() >= 2, "want a multi-run store");
        let static_index = store.to_index();
        assert_eq!(static_index.len(), store.len());
        for _ in 0..30 {
            let a = grid.random_cell(&mut rng);
            let c = grid.random_cell(&mut rng);
            let lo = Point::new([a.coord(0).min(c.coord(0)), a.coord(1).min(c.coord(1))]);
            let hi = Point::new([a.coord(0).max(c.coord(0)), a.coord(1).max(c.coord(1))]);
            let b = BoxRegion::new(lo, hi);
            let flat = |v: Vec<StoreEntryRef<'_, 2, u32>>| {
                v.into_iter()
                    .map(|e| (e.key, e.point, *e.payload))
                    .collect::<Vec<_>>()
            };
            let flat_idx = |v: Vec<sfc_index::EntryRef<'_, 2, u32>>| {
                v.into_iter()
                    .map(|e| (e.key, e.point, *e.payload))
                    .collect::<Vec<_>>()
            };
            let (bm, _) = store.query_box_bigmin(&b);
            let (iv, iv_stats) = store.query_box_intervals(&b);
            let (expected, _) = static_index.query_box_bigmin(&b);
            assert_eq!(flat(bm), flat_idx(expected.clone()));
            assert_eq!(flat(iv), flat_idx(expected));
            assert_eq!(iv_stats.reported, iv_stats.reported.min(iv_stats.scanned));
        }
    }

    #[test]
    fn knn_matches_linear_over_merged_view() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut rng = rng(7);
        let mut store = SfcStore::with_memtable_capacity(HilbertCurve::over(grid), 8);
        for i in 0..200u32 {
            let p = grid.random_cell(&mut rng);
            if i % 7 == 6 {
                store.delete(p);
            } else {
                store.insert(p, i);
            }
        }
        for _ in 0..25 {
            let q = grid.random_cell(&mut rng);
            for k in [1usize, 4, 9] {
                let (got, stats) = store.knn(q, k, 3);
                let want = store.knn_linear(q, k);
                let gd: Vec<u64> = got.iter().map(|e| q.euclidean_sq(&e.point)).collect();
                let wd: Vec<u64> = want.iter().map(|e| q.euclidean_sq(&e.point)).collect();
                assert_eq!(gd, wd, "k={k} q={q}");
                assert_eq!(stats.reported as usize, k.min(store.len()));
            }
        }
    }

    #[test]
    fn snapshot_iter_is_sorted_unique_and_live() {
        let grid = Grid::<2>::new(4).unwrap();
        let mut rng = rng(11);
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 8);
        for i in 0..300u32 {
            let p = grid.random_cell(&mut rng);
            if rng.gen_range(0..4u32) == 0 {
                store.delete(p);
            } else {
                store.insert(p, i);
            }
        }
        let entries: Vec<(CurveIndex, u32)> = store.iter().map(|e| (e.key, *e.payload)).collect();
        assert_eq!(entries.len(), store.len());
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0, "strictly increasing keys");
        }
        for (key, payload) in &entries {
            let p = store.curve().point_of(*key);
            assert_eq!(store.get(p), Some(payload));
        }
    }

    #[test]
    fn run_sizes_keep_the_tier_invariant() {
        let grid = Grid::<2>::new(6).unwrap();
        let mut rng = rng(13);
        let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 32);
        for i in 0..3_000u32 {
            store.insert(grid.random_cell(&mut rng), i);
        }
        let lens = store.run_lens();
        for w in lens.windows(2) {
            assert!(w[0] >= 2 * w[1], "size tiers violated: {lens:?}");
        }
        assert!(lens.len() <= 8, "too many runs: {lens:?}");
    }

    #[test]
    fn empty_store_behaviour() {
        let grid = Grid::<2>::new(3).unwrap();
        let mut store: SfcStore<2, u32, _> = SfcStore::new(ZCurve::over(grid));
        assert!(store.is_empty());
        assert_eq!(store.iter().count(), 0);
        let b = BoxRegion::new(Point::new([0, 0]), Point::new([7, 7]));
        assert!(store.query_box_intervals(&b).0.is_empty());
        assert!(store.query_box_bigmin(&b).0.is_empty());
        assert!(store.knn(Point::new([1, 1]), 3, 2).0.is_empty());
        store.flush();
        store.compact();
        assert!(store.is_empty());
    }
}
