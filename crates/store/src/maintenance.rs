//! Background maintenance for the sharded engine: a per-store thread
//! that owns size-triggered flushes and tiered-compaction scheduling, so
//! writer threads never pay for either.
//!
//! Without maintenance, the writer that happens to tip a memtable over
//! capacity performs the flush inline — correct, but that writer eats a
//! latency spike proportional to the memtable, and a flush that cascades
//! into a merge stalls it further. [`start_maintenance`] moves both off
//! the write path: it clears each shard's inline-flush flag (writers
//! then *never* flush) and a dedicated thread polls every
//! [`MaintenanceConfig::interval`], flushing shards at capacity and
//! compacting shards whose run stack has grown past
//! [`MaintenanceConfig::compact_at_runs`].
//!
//! # Rate limiting
//!
//! Maintenance I/O competes with the committer's group fsyncs for the
//! same device. An optional token-bucket [`RateLimit`] throttles the
//! maintenance thread — each flush/compaction first acquires tokens for
//! its estimated byte cost, sleeping in [`RateLimit::quantum`] slices
//! until the bucket refills. Writers never wait on the bucket (they
//! don't flush at all while maintenance runs), so the longest a writer
//! can stall behind a major merge is one memtable insert plus its own
//! group-commit ack — the property `tests/concurrency.rs` asserts.
//!
//! The thread holds a [`Weak`] reference to the store and stops on its
//! own when the store is dropped; [`ShardedSfcStore::stop_maintenance`]
//! (also called by `Drop`) stops it promptly and restores inline
//! flushing.
//!
//! [`start_maintenance`]: crate::ShardedSfcStore::start_maintenance
//! [`ShardedSfcStore::stop_maintenance`]: crate::ShardedSfcStore::stop_maintenance

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token-bucket throttle for maintenance I/O, in bytes per second.
#[derive(Debug, Clone)]
pub struct RateLimit {
    /// Sustained maintenance throughput.
    pub bytes_per_sec: u64,
    /// Bucket capacity: how large a burst may proceed unthrottled. Also
    /// caps the charge of a single operation, so one oversized merge
    /// cannot park the thread for longer than `burst / rate`.
    pub burst_bytes: u64,
    /// Sleep slice while waiting for tokens. The stop signal is checked
    /// every quantum, which bounds shutdown latency; it is also the
    /// worst-case scheduling delay the limiter can add beyond the token
    /// wait itself.
    pub quantum: Duration,
}

impl Default for RateLimit {
    /// 64 MiB/s sustained, 8 MiB bursts, 1 ms quantum.
    fn default() -> Self {
        Self {
            bytes_per_sec: 64 << 20,
            burst_bytes: 8 << 20,
            quantum: Duration::from_millis(1),
        }
    }
}

/// Configuration of the background maintenance thread.
#[derive(Debug, Clone)]
pub struct MaintenanceConfig {
    /// Poll interval between maintenance ticks.
    pub interval: Duration,
    /// A shard is compacted once its published run stack reaches this
    /// many runs (the tiered-compaction trigger).
    pub compact_at_runs: usize,
    /// Optional token-bucket throttle on maintenance I/O; `None` runs
    /// flushes and compactions at full speed.
    pub rate_limit: Option<RateLimit>,
}

impl Default for MaintenanceConfig {
    /// 2 ms ticks, compaction at 8 runs, no rate limit.
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(2),
            compact_at_runs: 8,
            rate_limit: None,
        }
    }
}

/// Stop signal shared with the maintenance thread: `true` = stop, plus
/// the condvar both the tick sleep and the token-bucket waits park on,
/// so a stop request interrupts either immediately.
pub(crate) type StopSignal = Arc<(Mutex<bool>, Condvar)>;

/// Handle to a running maintenance thread, stored inside the store.
pub(crate) struct MaintenanceHandle {
    pub(crate) stop: StopSignal,
    pub(crate) handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MaintenanceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenanceHandle")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

/// The token bucket itself, owned by the maintenance thread.
pub(crate) struct TokenBucket {
    limit: RateLimit,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    pub(crate) fn new(limit: RateLimit) -> Self {
        Self {
            tokens: limit.burst_bytes as f64,
            last: Instant::now(),
            limit,
        }
    }

    /// Blocks until `bytes` tokens are available (capped at the burst
    /// size) or the stop flag is raised, sleeping in quantum slices on
    /// the stop condvar. Returns the time spent waiting.
    pub(crate) fn acquire(&mut self, bytes: u64, stop: &StopSignal) -> Duration {
        let need = bytes.min(self.limit.burst_bytes).max(1) as f64;
        let start = Instant::now();
        loop {
            let now = Instant::now();
            let refill =
                now.duration_since(self.last).as_secs_f64() * self.limit.bytes_per_sec as f64;
            self.tokens = (self.tokens + refill).min(self.limit.burst_bytes as f64);
            self.last = now;
            if self.tokens >= need {
                self.tokens -= need;
                return start.elapsed();
            }
            let (lock, cv) = &**stop;
            let stopped = lock.lock().expect("maintenance stop signal poisoned");
            if *stopped {
                return start.elapsed();
            }
            let quantum = self.limit.quantum.max(Duration::from_micros(100));
            let _ = cv
                .wait_timeout(stopped, quantum)
                .expect("maintenance stop signal poisoned");
        }
    }
}

/// Sleeps for `interval` on the stop condvar; returns `true` if the
/// thread should exit.
pub(crate) fn wait_tick(stop: &StopSignal, interval: Duration) -> bool {
    let (lock, cv) = &**stop;
    let mut stopped = lock.lock().expect("maintenance stop signal poisoned");
    if *stopped {
        return true;
    }
    let deadline = Instant::now() + interval;
    loop {
        let now = Instant::now();
        if now >= deadline {
            return *stopped;
        }
        let (g, _) = cv
            .wait_timeout(stopped, deadline - now)
            .expect("maintenance stop signal poisoned");
        stopped = g;
        if *stopped {
            return true;
        }
    }
}
