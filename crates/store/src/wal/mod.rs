//! Durability for the sharded engine: a per-shard write-ahead log with
//! group commit, run/checkpoint persistence, and crash recovery.
//!
//! # The durability model
//!
//! Every acknowledged write exists in exactly one of two durable forms at
//! any instant:
//!
//! 1. **A WAL frame** — an append-only, length-prefixed, CRC32C-checked
//!    record in one of the shard's segment files (`shardN/wal-*.log`),
//!    carrying the *same per-shard sequence number* the memtable stamped
//!    on the entry (see [`crate::memtable`] and the epoch module). The
//!    WAL adds no ordering of its own; it borrows the one the engine
//!    already has.
//! 2. **A published run** — once a flush publishes an epoch at sequence
//!    high-water `H`, every record with `seq < H` lives in a run file
//!    (`run-*.run`) referenced by the shard's checkpoint (`ckpt-*`), and
//!    the frames below `H` become garbage.
//!
//! Recovery therefore replays exactly the frames with `seq >=` the
//!    checkpointed high-water into a fresh memtable — it never touches
//! the reader path, and a record is never applied twice. Shards recover
//! independently (their logs share nothing), so the per-shard scans and
//! replays fan out across threads — see [`WalConfig::recovery_threads`]
//! and the per-shard breakdown in [`RecoveryStats::shards`].
//!
//! # Group commit
//!
//! Writers never touch a file. [`log_write`](DurabilityHook::log_write)
//! pushes an encoded frame onto an in-memory commit queue and takes a
//! *ticket*; a dedicated committer thread drains the queue, appends each
//! shard's frames to its open segment, and issues **one fsync per shard
//! per group**. While no writer is blocked on an ack, the committer does
//! not even wake: un-waited records accumulate in the queue until
//! [`WalConfig::fsync_every`] of them — or, since batched appends can
//! carry kilobytes per frame, [`WalConfig::fsync_bytes`] frame bytes —
//! are pending (or [`WalConfig::max_batch_delay`] expires), then are
//! written and synced as one group — a waiting writer, a `sync()`
//! barrier, or shutdown forces the group immediately. Only after the
//! fsync does the durable ticket advance and
//! wake waiting writers. An fsync failure is *sticky*: the committer
//! parks with the error and every subsequent or waiting append returns
//! it — the log never silently drops a group.
//!
//! # Frame coalescing
//!
//! A batched write ([`apply_batch`](crate::ShardedSfcStore::apply_batch))
//! logs each shard's slice as **one multi-record frame** (frame format
//! v2, see [`record`]): one length/CRC header, one commit-queue ticket,
//! one `memcpy` into the segment — instead of per-record frames. Because
//! the whole batch body sits under a single checksum, a torn batch frame
//! is discarded *atomically* on recovery: a shard never replays half a
//! batch slice.
//!
//! # Commit/prune split
//!
//! Truncation is decoupled from the commit path (the aptosdb writer
//! shape): a flush *requests* pruning at its high-water and returns; the
//! committer deletes wholly-obsolete segments (`max seq < H`) after the
//! next group commit, off every writer's latency path.
//!
//! # Crash atomicity
//!
//! Run files and checkpoints are written, synced, and only then
//! referenced: the per-shard checkpoint generation a reopen trusts is
//! named by the root `MANIFEST`, which is replaced via
//! write-temp → fsync → rename → fsync-dir. A crash between any two
//! steps leaves either the old or the new state referenced, never a mix;
//! unreferenced files are garbage-collected on reopen. Rebalance defers
//! its per-shard manifest updates and commits all shard generations plus
//! the new partition boundaries in a single manifest write, so a
//! mid-rebalance crash rolls back to the consistent pre-rebalance cut.
//!
//! # Torn tails vs corruption
//!
//! The recovery scan classifies damage (see [`record`]): an incomplete
//! frame — or a checksum mismatch in a frame that runs exactly to end of
//! file — *in the newest segment* is a torn tail from the crash itself
//! and is discarded silently (it can only hold unacknowledged writes).
//! Any other unreadable byte is real corruption and fails recovery with
//! a typed [`WalError::Corrupt`], never a panic and never a silent skip.
//!
//! # Lock order
//!
//! The committer machinery extends the engine's lock order; the full
//! chain is
//!
//! ```text
//! partition (RwLock) → shard maint → shard mem
//!     → { epoch cell | shard persist → manifest → commit queue }
//! ```
//!
//! The commit-queue mutex is the last lock on every path: writers take
//! it with no other lock held, and the committer thread holds it only to
//! swap buffers (all file I/O happens outside it).

mod committer;
mod engine;
mod manifest;
mod record;
mod recovery;

pub(crate) use committer::Committer;
pub(crate) use engine::{DurabilityHook, WalEngine, WalShard};
pub(crate) use manifest::shard_dir;
pub(crate) use record::{encode_batch_frame, encode_frame, WalRecord};
pub(crate) use recovery::recover;

pub use record::WalPayload;

use std::io;
use std::path::PathBuf;
use std::time::Duration;

/// Configuration of a durable store's write-ahead log.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Root directory of the store's persistent state (`MANIFEST` plus
    /// one `shardN/` subdirectory per shard). Created if absent.
    pub dir: PathBuf,
    /// Group-commit batching bound: with no writer waiting on an ack,
    /// the committer defers the fsync until this many records have
    /// accumulated since the last one (a waiting writer, a [`sync`]
    /// barrier, or shutdown forces the fsync immediately). Also caps
    /// the in-queue linger: a group this full skips `max_batch_delay`.
    ///
    /// [`sync`]: crate::ShardedSfcStore::sync
    pub fsync_every: usize,
    /// Staleness bound on an under-full group: a deferred record is
    /// written *and* fsynced at most this long after it was queued.
    /// `Duration::ZERO` (the default) means no time bound — deferred
    /// records wait for a full group, an ack-waiter, a [`sync`] barrier,
    /// or shutdown, whichever comes first (the nosync contract already
    /// promises durability only at the next barrier).
    ///
    /// [`sync`]: crate::ShardedSfcStore::sync
    pub max_batch_delay: Duration,
    /// Byte-bound companion to `fsync_every`: the committer also closes
    /// a group once this many frame bytes have accumulated since the
    /// last fsync, so a burst of large coalesced batch frames does not
    /// balloon a group (and its worst-case replay) while staying far
    /// under the record-count bound. `0` disables the byte bound.
    pub fsync_bytes: u64,
    /// Segment rotation threshold: an open segment is sealed once it
    /// exceeds this many bytes (pruning granularity — smaller segments
    /// reclaim space sooner after a flush).
    pub segment_bytes: u64,
    /// Recovery replay parallelism: `1` scans and replays the shard
    /// logs serially on the opening thread; any other value (including
    /// the default `0` = auto) fans the per-shard recoveries out across
    /// the scoped thread pool, up to the machine's available
    /// parallelism. Shards share no recovery state, so the fan-out is
    /// deterministic — the recovered store is identical either way.
    pub recovery_threads: usize,
}

impl WalConfig {
    /// A configuration with defaults: `fsync_every` 256, `fsync_bytes`
    /// 1 MiB, no batch delay, 4 MiB segments, parallel recovery.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync_every: 256,
            fsync_bytes: 1 << 20,
            max_batch_delay: Duration::ZERO,
            segment_bytes: 4 << 20,
            recovery_threads: 0,
        }
    }

    /// Replaces the group-size fsync threshold (floored at 1).
    #[must_use]
    pub fn fsync_every(mut self, records: usize) -> Self {
        self.fsync_every = records.max(1);
        self
    }

    /// Replaces the group byte bound (`0` disables it).
    #[must_use]
    pub fn fsync_bytes(mut self, bytes: u64) -> Self {
        self.fsync_bytes = bytes;
        self
    }

    /// Replaces the recovery replay parallelism (`1` = serial, anything
    /// else = parallel up to the machine's available cores).
    #[must_use]
    pub fn recovery_threads(mut self, threads: usize) -> Self {
        self.recovery_threads = threads;
        self
    }

    /// Replaces the group linger delay.
    #[must_use]
    pub fn max_batch_delay(mut self, delay: Duration) -> Self {
        self.max_batch_delay = delay;
        self
    }

    /// Replaces the segment rotation threshold (floored at 4 KiB).
    #[must_use]
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(4 << 10);
        self
    }
}

/// A typed durability failure. `Clone` because a committer-side failure
/// is sticky: the original error is handed to every writer that was (or
/// later comes) waiting on the failed group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// An operating-system I/O failure, with the file it struck.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The OS error kind.
        kind: io::ErrorKind,
        /// The OS error message.
        detail: String,
    },
    /// Persistent state that is damaged beyond the crash-consistency
    /// contract — a checksum mismatch before the log tail, an
    /// unparseable record, a referenced file that is missing. Recovery
    /// refuses to guess and reports where.
    Corrupt {
        /// The damaged file.
        path: PathBuf,
        /// Byte offset of the damage, where meaningful.
        offset: u64,
        /// What failed to parse or verify.
        detail: String,
    },
    /// The on-disk state disagrees with the store being opened (shard
    /// count, dimensionality, curve domain).
    Mismatch {
        /// What disagreed.
        detail: String,
    },
    /// The commit queue was shut down (or deliberately crashed) while
    /// the operation was in flight; the write may or may not be durable.
    Shutdown,
}

impl WalError {
    pub(crate) fn io(path: impl Into<PathBuf>, err: &io::Error) -> Self {
        WalError::Io {
            path: path.into(),
            kind: err.kind(),
            detail: err.to_string(),
        }
    }

    pub(crate) fn corrupt(
        path: impl Into<PathBuf>,
        offset: u64,
        detail: impl Into<String>,
    ) -> Self {
        WalError::Corrupt {
            path: path.into(),
            offset,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { path, kind, detail } => {
                write!(f, "wal i/o error on {}: {kind:?}: {detail}", path.display())
            }
            WalError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "wal corruption in {} at byte {offset}: {detail}",
                path.display()
            ),
            WalError::Mismatch { detail } => write!(f, "wal/store mismatch: {detail}"),
            WalError::Shutdown => write!(f, "wal committer is shut down"),
        }
    }
}

impl std::error::Error for WalError {}

/// What one reopen of a durable store did, returned by
/// [`ShardedSfcStore::recovery_stats`](crate::ShardedSfcStore::recovery_stats).
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// WAL records replayed into memtables (`seq >=` checkpoint
    /// high-water).
    pub replayed_records: usize,
    /// Valid records skipped because a published run already covers them
    /// (`seq <` high-water — frames a prune had not reclaimed yet).
    pub skipped_records: usize,
    /// Immutable runs loaded from run files across all shards.
    pub runs_loaded: usize,
    /// WAL segment files scanned.
    pub segments_scanned: usize,
    /// Total WAL bytes read.
    pub wal_bytes: u64,
    /// Bytes discarded as the torn tail of the newest segment (an
    /// interrupted append — never an acknowledged write).
    pub torn_tail_bytes: u64,
    /// Orphaned files (unreferenced runs/checkpoints, temp files) swept
    /// on open.
    pub orphans_removed: usize,
    /// Wall-clock time of the whole recovery.
    pub elapsed: Duration,
    /// Threads the per-shard replay fanned out across (`1` = serial —
    /// see [`WalConfig::recovery_threads`]).
    pub replay_threads: usize,
    /// The per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardRecoveryStats>,
}

/// One shard's slice of a recovery — shards recover independently (in
/// parallel by default), and each reports its own work.
#[derive(Debug, Clone, Default)]
pub struct ShardRecoveryStats {
    /// WAL records replayed into this shard's memtable.
    pub replayed_records: usize,
    /// Valid records skipped (already covered by a published run).
    pub skipped_records: usize,
    /// Immutable runs loaded from this shard's run files.
    pub runs_loaded: usize,
    /// WAL segment files scanned.
    pub segments_scanned: usize,
    /// WAL bytes read.
    pub wal_bytes: u64,
    /// Bytes discarded as the newest segment's torn tail.
    pub torn_tail_bytes: u64,
    /// Orphaned files swept from this shard's directory.
    pub orphans_removed: usize,
    /// Wall-clock time of this shard's scan + replay (shard times
    /// overlap when recovery runs in parallel, so they can sum to more
    /// than [`RecoveryStats::elapsed`]).
    pub elapsed: Duration,
}
