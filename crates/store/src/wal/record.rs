//! The on-disk WAL record format: length-prefixed, CRC32C-checksummed
//! frames, and the [`WalPayload`] byte codec the frames carry.
//!
//! ## Frame layout
//!
//! ```text
//! [ body_len: u32 LE ][ crc32c(body): u32 LE ][ body: body_len bytes ]
//! ```
//!
//! with the body
//!
//! ```text
//! [ tag: u8 ][ seq: u64 LE ][ D × coord: u32 LE ][ payload bytes ]
//! ```
//!
//! where `tag` is [`TAG_TOMBSTONE`] (no payload bytes) or [`TAG_INSERT`]
//! (payload bytes follow, decoded by [`WalPayload::decode_payload`]).
//! The curve key is **not** stored: the curve is a bijection from cells
//! to keys, so recovery recomputes `curve.index_of(point)` — 16 bytes per
//! record saved, and the log stays valid across curve implementations
//! that agree on the mapping.
//!
//! ## Frame format v2: multi-record batch bodies
//!
//! A batched write coalesces a whole shard slice into **one** frame so
//! the group committer handles one ticket and one CRC instead of N. The
//! outer framing is unchanged (same length prefix, same checksum — v1
//! readers of the *framing* still walk the log); only the body grows a
//! new shape, introduced by [`TAG_BATCH`]:
//!
//! ```text
//! [ TAG_BATCH: u8 ][ count: u32 LE ] then `count` ×
//!   [ tag: u8 ][ seq: u64 LE ][ D × coord: u32 LE ]
//!   [ payload_len: u32 LE ][ payload bytes ]
//! ```
//!
//! Each packed record carries its own insert/tombstone tag and an
//! *explicit* payload length (a single-record body infers it from the
//! body length; packed records cannot). Because the whole batch sits
//! under one CRC and one length prefix, [`parse_frame`]'s torn-tail
//! classification applies to the batch as a unit: a crash mid-append
//! tears the *whole* frame, so recovery is all-or-nothing per shard
//! slice — exactly the atomicity the batched write path promises.
//!
//! ## Classifying damage
//!
//! [`parse_frame`] distinguishes the two ways a frame can be unreadable,
//! because recovery treats them differently (see the `wal` module docs):
//!
//! * [`FrameOutcome::Truncated`] — the buffer ends before the frame does.
//!   In the **last** segment this is a torn tail (a crash mid-append) and
//!   is discarded silently; anywhere else it is corruption.
//! * [`FrameOutcome::BadCrc`] — the frame is complete but its checksum
//!   does not match. If the frame ends exactly at the end of the last
//!   segment it is still classified as a torn tail (a partially persisted
//!   final append is indistinguishable from a flipped bit in it); any
//!   earlier bad checksum is corruption and fails recovery loudly.

use sfc_core::Point;

/// Tag byte of a tombstone (delete) record.
pub(crate) const TAG_TOMBSTONE: u8 = 0;
/// Tag byte of an insert/upsert record.
pub(crate) const TAG_INSERT: u8 = 1;
/// Tag byte of a multi-record batch body (frame format v2): a whole
/// shard slice of a cross-shard batch packed under one length prefix and
/// one CRC32C. See [`encode_batch_frame`].
pub(crate) const TAG_BATCH: u8 = 2;

/// Bytes of a batch body's own header: the batch tag plus the record
/// count.
pub(crate) const BATCH_HEADER: usize = 1 + 4;

/// Bytes one record occupies inside a batch body: per-record tag, seq,
/// coords, explicit payload length, payload.
pub(crate) const fn batch_entry_len<const D: usize>(payload_len: usize) -> usize {
    1 + 8 + 4 * D + 4 + payload_len
}

/// Frame header size: body length + body checksum.
pub(crate) const FRAME_HEADER: usize = 8;

/// Sanity cap on a single record body; a length prefix beyond this is
/// treated as damage, not as a request to allocate gigabytes.
pub(crate) const MAX_BODY: usize = 1 << 24;

/// Segment file header: magic, format version, point dimensionality,
/// two reserved zero bytes.
pub(crate) const SEGMENT_MAGIC: &[u8; 4] = b"SFWL";
/// Current segment format version.
pub(crate) const SEGMENT_VERSION: u8 = 1;
/// Size of the segment header in bytes.
pub(crate) const SEGMENT_HEADER: usize = 8;

/// Builds the 8-byte segment header for dimensionality `dims`.
pub(crate) fn segment_header(dims: u8) -> [u8; SEGMENT_HEADER] {
    let mut h = [0u8; SEGMENT_HEADER];
    h[..4].copy_from_slice(SEGMENT_MAGIC);
    h[4] = SEGMENT_VERSION;
    h[5] = dims;
    h
}

/// Checks a segment header; returns a human-readable complaint on
/// mismatch.
pub(crate) fn check_segment_header(h: &[u8], dims: u8) -> Result<(), String> {
    if h.len() < SEGMENT_HEADER {
        return Err(format!("segment header truncated at {} bytes", h.len()));
    }
    if &h[..4] != SEGMENT_MAGIC {
        return Err("bad segment magic".to_string());
    }
    if h[4] != SEGMENT_VERSION {
        return Err(format!("unsupported segment version {}", h[4]));
    }
    if h[5] != dims {
        return Err(format!("segment dims {} != store dims {dims}", h[5]));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// CRC32C (Castagnoli), table-driven, table built at compile time.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = crc32c_table();

const fn crc32c_table() -> [u32; 256] {
    // Reflected Castagnoli polynomial.
    const POLY: u32 = 0x82F6_3B78;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32C of `bytes` (Castagnoli polynomial, reflected, init/final XOR
/// `!0` — the same function hardware `crc32c` instructions compute).
pub(crate) fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------

/// Byte codec a payload type must provide to ride in the WAL (and in the
/// persisted run files). Hand-rolled rather than serde-based because the
/// build environment is offline: implementations exist for the common
/// primitive payloads, and user types compose them.
///
/// The contract: `decode_payload(encode_payload(x)) == Some(x)`, and
/// `decode_payload` must return `None` (never panic) on malformed input —
/// recovery turns `None` into a typed corruption error.
pub trait WalPayload: Sized {
    /// Appends this value's byte encoding to `out`.
    fn encode_payload(&self, out: &mut Vec<u8>);
    /// Decodes a value from exactly `bytes`, or `None` if malformed.
    fn decode_payload(bytes: &[u8]) -> Option<Self>;
}

macro_rules! impl_wal_payload_int {
    ($($t:ty),*) => {$(
        impl WalPayload for $t {
            fn encode_payload(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode_payload(bytes: &[u8]) -> Option<Self> {
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

impl_wal_payload_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

impl WalPayload for () {
    fn encode_payload(&self, _out: &mut Vec<u8>) {}
    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        bytes.is_empty().then_some(())
    }
}

impl WalPayload for bool {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        match bytes {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }
}

impl WalPayload for Vec<u8> {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

impl WalPayload for String {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

// ---------------------------------------------------------------------
// Frame encode / parse
// ---------------------------------------------------------------------

/// One decoded WAL record: the per-shard sequence number, the cell, and
/// the payload (`None` = tombstone).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WalRecord<const D: usize, T> {
    pub(crate) seq: u64,
    pub(crate) point: Point<D>,
    pub(crate) slot: Option<T>,
}

/// Appends one framed record to `out` and returns the frame's size in
/// bytes. `payload_bytes` is the already-encoded payload (empty for a
/// tombstone, which also flips the tag).
pub(crate) fn encode_frame<const D: usize>(
    out: &mut Vec<u8>,
    seq: u64,
    point: &Point<D>,
    slot: Option<&[u8]>,
) -> usize {
    let body_len = 1 + 8 + 4 * D + slot.map_or(0, <[u8]>::len);
    out.reserve(FRAME_HEADER + body_len);
    let start = out.len();
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    let body_start = out.len();
    out.push(if slot.is_some() {
        TAG_INSERT
    } else {
        TAG_TOMBSTONE
    });
    out.extend_from_slice(&seq.to_le_bytes());
    for i in 0..D {
        out.extend_from_slice(&point.coord(i).to_le_bytes());
    }
    if let Some(bytes) = slot {
        out.extend_from_slice(bytes);
    }
    let crc = crc32c(&out[body_start..]);
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

/// Appends one multi-record batch frame (format v2, see the module docs)
/// to `out` and returns the frame's size in bytes. `records` is a shard
/// slice as `(seq, point, encoded payload | tombstone)` — already
/// key-sorted by the router, though this encoder does not care. A
/// single-record batch degenerates to the equivalent v1 frame (same
/// bytes on disk as [`encode_frame`], no batch overhead).
pub(crate) fn encode_batch_frame<const D: usize>(
    out: &mut Vec<u8>,
    records: &[(u64, Point<D>, Option<Vec<u8>>)],
) -> usize {
    debug_assert!(!records.is_empty(), "a batch frame carries >= 1 record");
    if let [(seq, point, payload)] = records {
        return encode_frame(out, *seq, point, payload.as_deref());
    }
    let body_len = BATCH_HEADER
        + records
            .iter()
            .map(|(_, _, payload)| batch_entry_len::<D>(payload.as_ref().map_or(0, Vec::len)))
            .sum::<usize>();
    debug_assert!(body_len <= MAX_BODY, "caller chunks batches at MAX_BODY");
    out.reserve(FRAME_HEADER + body_len);
    let start = out.len();
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    let body_start = out.len();
    out.push(TAG_BATCH);
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for (seq, point, payload) in records {
        out.push(if payload.is_some() {
            TAG_INSERT
        } else {
            TAG_TOMBSTONE
        });
        out.extend_from_slice(&seq.to_le_bytes());
        for i in 0..D {
            out.extend_from_slice(&point.coord(i).to_le_bytes());
        }
        let bytes = payload.as_deref().unwrap_or(&[]);
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    let crc = crc32c(&out[body_start..]);
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

/// The result of parsing one frame at some offset of a segment buffer.
#[derive(Debug)]
pub(crate) enum FrameOutcome<'a> {
    /// A complete frame with a valid checksum; `body` is the record body
    /// and `end` the buffer offset just past the frame.
    Ok { body: &'a [u8], end: usize },
    /// The buffer ends before the frame does (or the length prefix is
    /// insane, which a torn append can also produce).
    Truncated,
    /// The frame is complete but the checksum mismatches; `end` is the
    /// offset just past the frame — `end == buf.len()` in the last
    /// segment means torn tail, anything else means corruption.
    BadCrc { end: usize },
}

/// Parses the frame starting at `off`. `off == buf.len()` is a clean end
/// — callers check that before calling.
pub(crate) fn parse_frame(buf: &[u8], off: usize) -> FrameOutcome<'_> {
    let rest = &buf[off..];
    if rest.len() < FRAME_HEADER {
        return FrameOutcome::Truncated;
    }
    let body_len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
    if body_len == 0 || body_len > MAX_BODY {
        // A zero or absurd length prefix cannot be a well-formed frame;
        // treat it like a frame the buffer cannot contain.
        return FrameOutcome::Truncated;
    }
    if rest.len() < FRAME_HEADER + body_len {
        return FrameOutcome::Truncated;
    }
    let want = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
    let body = &rest[FRAME_HEADER..FRAME_HEADER + body_len];
    let end = off + FRAME_HEADER + body_len;
    if crc32c(body) != want {
        return FrameOutcome::BadCrc { end };
    }
    FrameOutcome::Ok { body, end }
}

/// Decodes a checksum-valid record body. A failure here means the frame
/// passed its CRC but does not parse — a format bug or version skew, not
/// bit rot — and recovery reports it as corruption with this detail.
pub(crate) fn decode_body<const D: usize, T: WalPayload>(
    body: &[u8],
) -> Result<WalRecord<D, T>, String> {
    let fixed = 1 + 8 + 4 * D;
    if body.len() < fixed {
        return Err(format!("body too short: {} < {fixed}", body.len()));
    }
    let tag = body[0];
    let seq = u64::from_le_bytes(body[1..9].try_into().expect("8 bytes"));
    let mut coords = [0u32; D];
    for (i, c) in coords.iter_mut().enumerate() {
        *c = u32::from_le_bytes(body[9 + 4 * i..13 + 4 * i].try_into().expect("4 bytes"));
    }
    let point = Point::new(coords);
    let payload = &body[fixed..];
    let slot = match tag {
        TAG_TOMBSTONE => {
            if !payload.is_empty() {
                return Err(format!("tombstone with {} payload bytes", payload.len()));
            }
            None
        }
        TAG_INSERT => {
            Some(T::decode_payload(payload).ok_or_else(|| "payload failed to decode".to_string())?)
        }
        other => return Err(format!("unknown record tag {other}")),
    };
    Ok(WalRecord { seq, point, slot })
}

/// Decodes a checksum-valid body of either format — a v1 single-record
/// body or a v2 [`TAG_BATCH`] body — pushing every record onto `out` in
/// encoded order. Returns how many records the body held. Like
/// [`decode_body`], a failure here is format skew under a valid CRC and
/// recovery reports it as corruption.
pub(crate) fn decode_body_records<const D: usize, T: WalPayload>(
    body: &[u8],
    out: &mut Vec<WalRecord<D, T>>,
) -> Result<usize, String> {
    if body.first() != Some(&TAG_BATCH) {
        out.push(decode_body(body)?);
        return Ok(1);
    }
    if body.len() < BATCH_HEADER {
        return Err(format!("batch header too short: {} bytes", body.len()));
    }
    let count = u32::from_le_bytes(body[1..5].try_into().expect("4 bytes")) as usize;
    if count == 0 {
        return Err("batch body with zero records".to_string());
    }
    let mut off = BATCH_HEADER;
    for i in 0..count {
        let fixed = batch_entry_len::<D>(0);
        if body.len() - off < fixed {
            return Err(format!(
                "batch record {i}/{count} truncated inside the body"
            ));
        }
        let tag = body[off];
        let seq = u64::from_le_bytes(body[off + 1..off + 9].try_into().expect("8 bytes"));
        let mut coords = [0u32; D];
        for (d, c) in coords.iter_mut().enumerate() {
            let at = off + 9 + 4 * d;
            *c = u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes"));
        }
        let len_at = off + 9 + 4 * D;
        let payload_len =
            u32::from_le_bytes(body[len_at..len_at + 4].try_into().expect("4 bytes")) as usize;
        let payload_at = len_at + 4;
        if body.len() - payload_at < payload_len {
            return Err(format!(
                "batch record {i}/{count} payload overruns the body"
            ));
        }
        let payload = &body[payload_at..payload_at + payload_len];
        let slot = match tag {
            TAG_TOMBSTONE => {
                if payload_len != 0 {
                    return Err(format!("batch tombstone with {payload_len} payload bytes"));
                }
                None
            }
            TAG_INSERT => Some(
                T::decode_payload(payload)
                    .ok_or_else(|| format!("batch record {i}/{count} payload failed to decode"))?,
            ),
            other => return Err(format!("unknown batch record tag {other}")),
        };
        out.push(WalRecord {
            seq,
            point: Point::new(coords),
            slot,
        });
        off = payload_at + payload_len;
    }
    if off != body.len() {
        return Err(format!(
            "batch body has {} trailing bytes after {count} records",
            body.len() - off
        ));
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_known_vectors() {
        // RFC 3720 test vectors for CRC32C.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn frame_roundtrip_insert_and_tombstone() {
        let mut buf = Vec::new();
        let p = Point::new([3u32, 17]);
        let mut payload = Vec::new();
        42u64.encode_payload(&mut payload);
        let n1 = encode_frame(&mut buf, 7, &p, Some(&payload));
        let n2 = encode_frame(&mut buf, 8, &p, None);
        assert_eq!(buf.len(), n1 + n2);

        let FrameOutcome::Ok { body, end } = parse_frame(&buf, 0) else {
            panic!("first frame must parse");
        };
        let rec: WalRecord<2, u64> = decode_body(body).unwrap();
        assert_eq!(
            rec,
            WalRecord {
                seq: 7,
                point: p,
                slot: Some(42)
            }
        );
        assert_eq!(end, n1);

        let FrameOutcome::Ok { body, end } = parse_frame(&buf, n1) else {
            panic!("second frame must parse");
        };
        let rec: WalRecord<2, u64> = decode_body(body).unwrap();
        assert_eq!(rec.slot, None);
        assert_eq!(rec.seq, 8);
        assert_eq!(end, buf.len());
    }

    #[test]
    fn every_truncation_of_a_frame_is_truncated() {
        let mut buf = Vec::new();
        let p = Point::new([1u32, 2]);
        let mut payload = Vec::new();
        9u32.encode_payload(&mut payload);
        encode_frame(&mut buf, 0, &p, Some(&payload));
        for cut in 0..buf.len() {
            assert!(
                matches!(parse_frame(&buf[..cut], 0), FrameOutcome::Truncated),
                "cut at {cut} must read as truncated"
            );
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum_or_read_as_truncated() {
        let mut clean = Vec::new();
        let p = Point::new([5u32, 6]);
        let mut payload = Vec::new();
        1234u64.encode_payload(&mut payload);
        encode_frame(&mut clean, 3, &p, Some(&payload));
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut buf = clean.clone();
                buf[byte] ^= 1 << bit;
                match parse_frame(&buf, 0) {
                    // A flip in the length prefix usually makes the frame
                    // overshoot the buffer.
                    FrameOutcome::Truncated => {}
                    FrameOutcome::BadCrc { .. } => {}
                    FrameOutcome::Ok { body, end } => {
                        // A flip in the length prefix can shorten the
                        // frame so the CRC covers different bytes — it
                        // must never verify.
                        panic!(
                            "flip byte {byte} bit {bit} still parsed ok \
                             (body {} bytes, end {end})",
                            body.len()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn payload_codecs_roundtrip() {
        fn rt<T: WalPayload + PartialEq + std::fmt::Debug>(v: T) {
            let mut buf = Vec::new();
            v.encode_payload(&mut buf);
            assert_eq!(T::decode_payload(&buf), Some(v));
        }
        rt(0u8);
        rt(u128::MAX);
        rt(-7i64);
        rt(3.5f64);
        rt(true);
        rt(());
        rt(String::from("spatial"));
        rt(vec![1u8, 2, 3]);
        assert_eq!(u32::decode_payload(&[1, 2, 3]), None);
        assert_eq!(bool::decode_payload(&[2]), None);
        assert_eq!(<()>::decode_payload(&[1]), None);
    }

    /// A three-record batch for the v2 tests: two inserts flanking a
    /// tombstone.
    fn sample_batch() -> Vec<(u64, Point<2>, Option<Vec<u8>>)> {
        let enc = |v: u64| {
            let mut b = Vec::new();
            v.encode_payload(&mut b);
            b
        };
        vec![
            (10, Point::new([1u32, 2]), Some(enc(111))),
            (11, Point::new([3u32, 4]), None),
            (12, Point::new([5u32, 6]), Some(enc(222))),
        ]
    }

    #[test]
    fn batch_frame_roundtrip() {
        let records = sample_batch();
        let mut buf = Vec::new();
        let n = encode_batch_frame(&mut buf, &records);
        assert_eq!(n, buf.len());
        let FrameOutcome::Ok { body, end } = parse_frame(&buf, 0) else {
            panic!("batch frame must parse");
        };
        assert_eq!(end, buf.len());
        let mut out: Vec<WalRecord<2, u64>> = Vec::new();
        assert_eq!(decode_body_records(body, &mut out), Ok(3));
        assert_eq!(
            out,
            vec![
                WalRecord {
                    seq: 10,
                    point: Point::new([1, 2]),
                    slot: Some(111)
                },
                WalRecord {
                    seq: 11,
                    point: Point::new([3, 4]),
                    slot: None
                },
                WalRecord {
                    seq: 12,
                    point: Point::new([5, 6]),
                    slot: Some(222)
                },
            ]
        );
    }

    #[test]
    fn single_record_batch_degenerates_to_v1_frame() {
        let mut payload = Vec::new();
        42u64.encode_payload(&mut payload);
        let records = vec![(7u64, Point::new([3u32, 17]), Some(payload.clone()))];
        let mut batch = Vec::new();
        encode_batch_frame(&mut batch, &records);
        let mut single = Vec::new();
        encode_frame(&mut single, 7, &Point::new([3u32, 17]), Some(&payload));
        assert_eq!(batch, single, "one-record batch must be byte-identical");
    }

    #[test]
    fn decode_body_records_handles_v1_bodies_too() {
        let mut buf = Vec::new();
        let mut payload = Vec::new();
        9u64.encode_payload(&mut payload);
        encode_frame(&mut buf, 3, &Point::new([5u32, 6]), Some(&payload));
        let FrameOutcome::Ok { body, .. } = parse_frame(&buf, 0) else {
            panic!("frame must parse");
        };
        let mut out: Vec<WalRecord<2, u64>> = Vec::new();
        assert_eq!(decode_body_records(body, &mut out), Ok(1));
        assert_eq!(out[0].slot, Some(9));
    }

    #[test]
    fn every_truncation_of_a_batch_frame_is_truncated() {
        let mut buf = Vec::new();
        encode_batch_frame(&mut buf, &sample_batch());
        for cut in 0..buf.len() {
            assert!(
                matches!(parse_frame(&buf[..cut], 0), FrameOutcome::Truncated),
                "cut at {cut} must read as truncated"
            );
        }
    }

    #[test]
    fn batch_bit_flips_fail_the_checksum_or_read_as_truncated() {
        let mut clean = Vec::new();
        encode_batch_frame(&mut clean, &sample_batch());
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut buf = clean.clone();
                buf[byte] ^= 1 << bit;
                match parse_frame(&buf, 0) {
                    FrameOutcome::Truncated | FrameOutcome::BadCrc { .. } => {}
                    FrameOutcome::Ok { .. } => {
                        panic!("flip byte {byte} bit {bit} still parsed ok")
                    }
                }
            }
        }
    }

    #[test]
    fn malformed_batch_bodies_are_format_errors() {
        let mut buf = Vec::new();
        encode_batch_frame(&mut buf, &sample_batch());
        let FrameOutcome::Ok { body, .. } = parse_frame(&buf, 0) else {
            panic!("frame must parse");
        };
        let mut out: Vec<WalRecord<2, u64>> = Vec::new();
        // Count says 4, body holds 3.
        let mut overcount = body.to_vec();
        overcount[1..5].copy_from_slice(&4u32.to_le_bytes());
        assert!(decode_body_records::<2, u64>(&overcount, &mut out).is_err());
        // Count says 2, body holds 3: trailing bytes.
        let mut undercount = body.to_vec();
        undercount[1..5].copy_from_slice(&2u32.to_le_bytes());
        assert!(decode_body_records::<2, u64>(&undercount, &mut out).is_err());
        // A zero-record batch is never emitted.
        let mut empty = vec![TAG_BATCH];
        empty.extend_from_slice(&0u32.to_le_bytes());
        assert!(decode_body_records::<2, u64>(&empty, &mut out).is_err());
    }

    #[test]
    fn segment_header_roundtrip_and_mismatches() {
        let h = segment_header(2);
        assert!(check_segment_header(&h, 2).is_ok());
        assert!(check_segment_header(&h, 3).is_err());
        assert!(check_segment_header(&h[..4], 2).is_err());
        let mut bad = h;
        bad[0] = b'X';
        assert!(check_segment_header(&bad, 2).is_err());
    }
}
