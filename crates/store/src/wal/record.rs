//! The on-disk WAL record format: length-prefixed, CRC32C-checksummed
//! frames, and the [`WalPayload`] byte codec the frames carry.
//!
//! ## Frame layout
//!
//! ```text
//! [ body_len: u32 LE ][ crc32c(body): u32 LE ][ body: body_len bytes ]
//! ```
//!
//! with the body
//!
//! ```text
//! [ tag: u8 ][ seq: u64 LE ][ D × coord: u32 LE ][ payload bytes ]
//! ```
//!
//! where `tag` is [`TAG_TOMBSTONE`] (no payload bytes) or [`TAG_INSERT`]
//! (payload bytes follow, decoded by [`WalPayload::decode_payload`]).
//! The curve key is **not** stored: the curve is a bijection from cells
//! to keys, so recovery recomputes `curve.index_of(point)` — 16 bytes per
//! record saved, and the log stays valid across curve implementations
//! that agree on the mapping.
//!
//! ## Classifying damage
//!
//! [`parse_frame`] distinguishes the two ways a frame can be unreadable,
//! because recovery treats them differently (see the `wal` module docs):
//!
//! * [`FrameOutcome::Truncated`] — the buffer ends before the frame does.
//!   In the **last** segment this is a torn tail (a crash mid-append) and
//!   is discarded silently; anywhere else it is corruption.
//! * [`FrameOutcome::BadCrc`] — the frame is complete but its checksum
//!   does not match. If the frame ends exactly at the end of the last
//!   segment it is still classified as a torn tail (a partially persisted
//!   final append is indistinguishable from a flipped bit in it); any
//!   earlier bad checksum is corruption and fails recovery loudly.

use sfc_core::Point;

/// Tag byte of a tombstone (delete) record.
pub(crate) const TAG_TOMBSTONE: u8 = 0;
/// Tag byte of an insert/upsert record.
pub(crate) const TAG_INSERT: u8 = 1;

/// Frame header size: body length + body checksum.
pub(crate) const FRAME_HEADER: usize = 8;

/// Sanity cap on a single record body; a length prefix beyond this is
/// treated as damage, not as a request to allocate gigabytes.
pub(crate) const MAX_BODY: usize = 1 << 24;

/// Segment file header: magic, format version, point dimensionality,
/// two reserved zero bytes.
pub(crate) const SEGMENT_MAGIC: &[u8; 4] = b"SFWL";
/// Current segment format version.
pub(crate) const SEGMENT_VERSION: u8 = 1;
/// Size of the segment header in bytes.
pub(crate) const SEGMENT_HEADER: usize = 8;

/// Builds the 8-byte segment header for dimensionality `dims`.
pub(crate) fn segment_header(dims: u8) -> [u8; SEGMENT_HEADER] {
    let mut h = [0u8; SEGMENT_HEADER];
    h[..4].copy_from_slice(SEGMENT_MAGIC);
    h[4] = SEGMENT_VERSION;
    h[5] = dims;
    h
}

/// Checks a segment header; returns a human-readable complaint on
/// mismatch.
pub(crate) fn check_segment_header(h: &[u8], dims: u8) -> Result<(), String> {
    if h.len() < SEGMENT_HEADER {
        return Err(format!("segment header truncated at {} bytes", h.len()));
    }
    if &h[..4] != SEGMENT_MAGIC {
        return Err("bad segment magic".to_string());
    }
    if h[4] != SEGMENT_VERSION {
        return Err(format!("unsupported segment version {}", h[4]));
    }
    if h[5] != dims {
        return Err(format!("segment dims {} != store dims {dims}", h[5]));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// CRC32C (Castagnoli), table-driven, table built at compile time.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = crc32c_table();

const fn crc32c_table() -> [u32; 256] {
    // Reflected Castagnoli polynomial.
    const POLY: u32 = 0x82F6_3B78;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32C of `bytes` (Castagnoli polynomial, reflected, init/final XOR
/// `!0` — the same function hardware `crc32c` instructions compute).
pub(crate) fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------

/// Byte codec a payload type must provide to ride in the WAL (and in the
/// persisted run files). Hand-rolled rather than serde-based because the
/// build environment is offline: implementations exist for the common
/// primitive payloads, and user types compose them.
///
/// The contract: `decode_payload(encode_payload(x)) == Some(x)`, and
/// `decode_payload` must return `None` (never panic) on malformed input —
/// recovery turns `None` into a typed corruption error.
pub trait WalPayload: Sized {
    /// Appends this value's byte encoding to `out`.
    fn encode_payload(&self, out: &mut Vec<u8>);
    /// Decodes a value from exactly `bytes`, or `None` if malformed.
    fn decode_payload(bytes: &[u8]) -> Option<Self>;
}

macro_rules! impl_wal_payload_int {
    ($($t:ty),*) => {$(
        impl WalPayload for $t {
            fn encode_payload(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode_payload(bytes: &[u8]) -> Option<Self> {
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

impl_wal_payload_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

impl WalPayload for () {
    fn encode_payload(&self, _out: &mut Vec<u8>) {}
    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        bytes.is_empty().then_some(())
    }
}

impl WalPayload for bool {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        match bytes {
            [0] => Some(false),
            [1] => Some(true),
            _ => None,
        }
    }
}

impl WalPayload for Vec<u8> {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

impl WalPayload for String {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn decode_payload(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

// ---------------------------------------------------------------------
// Frame encode / parse
// ---------------------------------------------------------------------

/// One decoded WAL record: the per-shard sequence number, the cell, and
/// the payload (`None` = tombstone).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WalRecord<const D: usize, T> {
    pub(crate) seq: u64,
    pub(crate) point: Point<D>,
    pub(crate) slot: Option<T>,
}

/// Appends one framed record to `out` and returns the frame's size in
/// bytes. `payload_bytes` is the already-encoded payload (empty for a
/// tombstone, which also flips the tag).
pub(crate) fn encode_frame<const D: usize>(
    out: &mut Vec<u8>,
    seq: u64,
    point: &Point<D>,
    slot: Option<&[u8]>,
) -> usize {
    let body_len = 1 + 8 + 4 * D + slot.map_or(0, <[u8]>::len);
    out.reserve(FRAME_HEADER + body_len);
    let start = out.len();
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    let body_start = out.len();
    out.push(if slot.is_some() {
        TAG_INSERT
    } else {
        TAG_TOMBSTONE
    });
    out.extend_from_slice(&seq.to_le_bytes());
    for i in 0..D {
        out.extend_from_slice(&point.coord(i).to_le_bytes());
    }
    if let Some(bytes) = slot {
        out.extend_from_slice(bytes);
    }
    let crc = crc32c(&out[body_start..]);
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

/// The result of parsing one frame at some offset of a segment buffer.
#[derive(Debug)]
pub(crate) enum FrameOutcome<'a> {
    /// A complete frame with a valid checksum; `body` is the record body
    /// and `end` the buffer offset just past the frame.
    Ok { body: &'a [u8], end: usize },
    /// The buffer ends before the frame does (or the length prefix is
    /// insane, which a torn append can also produce).
    Truncated,
    /// The frame is complete but the checksum mismatches; `end` is the
    /// offset just past the frame — `end == buf.len()` in the last
    /// segment means torn tail, anything else means corruption.
    BadCrc { end: usize },
}

/// Parses the frame starting at `off`. `off == buf.len()` is a clean end
/// — callers check that before calling.
pub(crate) fn parse_frame(buf: &[u8], off: usize) -> FrameOutcome<'_> {
    let rest = &buf[off..];
    if rest.len() < FRAME_HEADER {
        return FrameOutcome::Truncated;
    }
    let body_len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
    if body_len == 0 || body_len > MAX_BODY {
        // A zero or absurd length prefix cannot be a well-formed frame;
        // treat it like a frame the buffer cannot contain.
        return FrameOutcome::Truncated;
    }
    if rest.len() < FRAME_HEADER + body_len {
        return FrameOutcome::Truncated;
    }
    let want = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
    let body = &rest[FRAME_HEADER..FRAME_HEADER + body_len];
    let end = off + FRAME_HEADER + body_len;
    if crc32c(body) != want {
        return FrameOutcome::BadCrc { end };
    }
    FrameOutcome::Ok { body, end }
}

/// Decodes a checksum-valid record body. A failure here means the frame
/// passed its CRC but does not parse — a format bug or version skew, not
/// bit rot — and recovery reports it as corruption with this detail.
pub(crate) fn decode_body<const D: usize, T: WalPayload>(
    body: &[u8],
) -> Result<WalRecord<D, T>, String> {
    let fixed = 1 + 8 + 4 * D;
    if body.len() < fixed {
        return Err(format!("body too short: {} < {fixed}", body.len()));
    }
    let tag = body[0];
    let seq = u64::from_le_bytes(body[1..9].try_into().expect("8 bytes"));
    let mut coords = [0u32; D];
    for (i, c) in coords.iter_mut().enumerate() {
        *c = u32::from_le_bytes(body[9 + 4 * i..13 + 4 * i].try_into().expect("4 bytes"));
    }
    let point = Point::new(coords);
    let payload = &body[fixed..];
    let slot = match tag {
        TAG_TOMBSTONE => {
            if !payload.is_empty() {
                return Err(format!("tombstone with {} payload bytes", payload.len()));
            }
            None
        }
        TAG_INSERT => {
            Some(T::decode_payload(payload).ok_or_else(|| "payload failed to decode".to_string())?)
        }
        other => return Err(format!("unknown record tag {other}")),
    };
    Ok(WalRecord { seq, point, slot })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_matches_known_vectors() {
        // RFC 3720 test vectors for CRC32C.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn frame_roundtrip_insert_and_tombstone() {
        let mut buf = Vec::new();
        let p = Point::new([3u32, 17]);
        let mut payload = Vec::new();
        42u64.encode_payload(&mut payload);
        let n1 = encode_frame(&mut buf, 7, &p, Some(&payload));
        let n2 = encode_frame(&mut buf, 8, &p, None);
        assert_eq!(buf.len(), n1 + n2);

        let FrameOutcome::Ok { body, end } = parse_frame(&buf, 0) else {
            panic!("first frame must parse");
        };
        let rec: WalRecord<2, u64> = decode_body(body).unwrap();
        assert_eq!(
            rec,
            WalRecord {
                seq: 7,
                point: p,
                slot: Some(42)
            }
        );
        assert_eq!(end, n1);

        let FrameOutcome::Ok { body, end } = parse_frame(&buf, n1) else {
            panic!("second frame must parse");
        };
        let rec: WalRecord<2, u64> = decode_body(body).unwrap();
        assert_eq!(rec.slot, None);
        assert_eq!(rec.seq, 8);
        assert_eq!(end, buf.len());
    }

    #[test]
    fn every_truncation_of_a_frame_is_truncated() {
        let mut buf = Vec::new();
        let p = Point::new([1u32, 2]);
        let mut payload = Vec::new();
        9u32.encode_payload(&mut payload);
        encode_frame(&mut buf, 0, &p, Some(&payload));
        for cut in 0..buf.len() {
            assert!(
                matches!(parse_frame(&buf[..cut], 0), FrameOutcome::Truncated),
                "cut at {cut} must read as truncated"
            );
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum_or_read_as_truncated() {
        let mut clean = Vec::new();
        let p = Point::new([5u32, 6]);
        let mut payload = Vec::new();
        1234u64.encode_payload(&mut payload);
        encode_frame(&mut clean, 3, &p, Some(&payload));
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut buf = clean.clone();
                buf[byte] ^= 1 << bit;
                match parse_frame(&buf, 0) {
                    // A flip in the length prefix usually makes the frame
                    // overshoot the buffer.
                    FrameOutcome::Truncated => {}
                    FrameOutcome::BadCrc { .. } => {}
                    FrameOutcome::Ok { body, end } => {
                        // A flip in the length prefix can shorten the
                        // frame so the CRC covers different bytes — it
                        // must never verify.
                        panic!(
                            "flip byte {byte} bit {bit} still parsed ok \
                             (body {} bytes, end {end})",
                            body.len()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn payload_codecs_roundtrip() {
        fn rt<T: WalPayload + PartialEq + std::fmt::Debug>(v: T) {
            let mut buf = Vec::new();
            v.encode_payload(&mut buf);
            assert_eq!(T::decode_payload(&buf), Some(v));
        }
        rt(0u8);
        rt(u128::MAX);
        rt(-7i64);
        rt(3.5f64);
        rt(true);
        rt(());
        rt(String::from("spatial"));
        rt(vec![1u8, 2, 3]);
        assert_eq!(u32::decode_payload(&[1, 2, 3]), None);
        assert_eq!(bool::decode_payload(&[2]), None);
        assert_eq!(<()>::decode_payload(&[1]), None);
    }

    #[test]
    fn segment_header_roundtrip_and_mismatches() {
        let h = segment_header(2);
        assert!(check_segment_header(&h, 2).is_ok());
        assert!(check_segment_header(&h, 3).is_err());
        assert!(check_segment_header(&h[..4], 2).is_err());
        let mut bad = h;
        bad[0] = b'X';
        assert!(check_segment_header(&bad, 2).is_err());
    }
}
