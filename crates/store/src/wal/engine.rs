//! The store-facing side of the WAL: the engine-wide handle
//! ([`WalEngine`]: committer + manifest state) and the per-shard
//! [`DurabilityHook`] the concurrent shard calls at its three durability
//! points — logging a write, persisting a published epoch, and
//! finishing a deferred (rebalance) commit.
//!
//! The hook is a trait object so the payload codec bound
//! ([`WalPayload`]) appears only where a durable store is *opened*, not
//! on every engine method: an in-memory store carries `None` and pays
//! one pointer check.

use std::fmt;
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use sfc_core::{CurveIndex, Point, SpaceFillingCurve};

use super::committer::Committer;
use super::manifest::{ckpt_path, run_path, sync_dir, write_file, Checkpoint, Manifest};
use super::record::{batch_entry_len, WalPayload, BATCH_HEADER, MAX_BODY};
use super::{encode_batch_frame, encode_frame, WalConfig, WalError};
use crate::view::Run;

/// Engine-wide durability state: the committer plus the in-memory image
/// of the manifest (flipped to disk at every commit point).
pub(crate) struct WalEngine {
    dir: PathBuf,
    dims: u8,
    pub(crate) committer: Committer,
    manifest: Mutex<Manifest>,
}

impl fmt::Debug for WalEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalEngine")
            .field("dir", &self.dir)
            .field("committer", &self.committer)
            .finish_non_exhaustive()
    }
}

impl WalEngine {
    pub(crate) fn new(
        config: &WalConfig,
        dims: u8,
        committer: Committer,
        manifest: Manifest,
    ) -> Self {
        Self {
            dir: config.dir.clone(),
            dims,
            committer,
            manifest: Mutex::new(manifest),
        }
    }

    /// Updates shard `j`'s checkpoint generation; with `write_now` the
    /// manifest is flipped to disk immediately, otherwise the update
    /// waits for [`commit_boundaries`](Self::commit_boundaries) (the
    /// deferred half of a rebalance).
    fn set_gen(&self, j: usize, gen: u64, write_now: bool) -> Result<(), WalError> {
        let mut m = self.manifest.lock().expect("manifest state poisoned");
        m.gens[j] = gen;
        if write_now {
            m.commit(&self.dir, self.dims)?;
        }
        Ok(())
    }

    /// The single commit point of a rebalance: writes the manifest with
    /// the new partition boundaries *and* every generation updated by
    /// the deferred installs.
    pub(crate) fn commit_boundaries(&self, boundaries: Vec<CurveIndex>) -> Result<(), WalError> {
        let mut m = self.manifest.lock().expect("manifest state poisoned");
        m.boundaries = boundaries;
        m.commit(&self.dir, self.dims)
    }
}

/// The three durability points of a concurrent shard, object-safe so
/// [`Shard`](crate::epoch) stores `Option<Arc<dyn DurabilityHook>>`
/// without a payload-codec bound.
pub(crate) trait DurabilityHook<const D: usize, T, C>: Send + Sync + fmt::Debug
where
    C: SpaceFillingCurve<D> + Clone,
{
    /// Encodes a payload for the log. Called *before* the shard's `mem`
    /// lock (the payload moves into the memtable inside it).
    fn encode_payload(&self, payload: &T) -> Vec<u8>;

    /// Logs one write (`payload: None` = tombstone) under the sequence
    /// number the memtable assigned. With `wait`, blocks for the group
    /// fsync — the durable ack.
    fn log_write(
        &self,
        seq: u64,
        point: &Point<D>,
        payload: Option<Vec<u8>>,
        wait: bool,
    ) -> Result<(), WalError>;

    /// Logs a shard's slice of an applied batch as coalesced
    /// multi-record frames — one frame (one ticket, one checksum) for
    /// the whole slice, chunked only if it would overflow a frame's
    /// maximum body. With `wait`, blocks for the *last* chunk's group
    /// fsync, which covers every earlier chunk (groups are ordered).
    fn log_batch(
        &self,
        records: &[(u64, Point<D>, Option<Vec<u8>>)],
        wait: bool,
    ) -> Result<(), WalError>;

    /// Persists a freshly published epoch: new run files, a new
    /// checkpoint generation, the manifest flip, and a prune request at
    /// the new high-water. `high_water: None` keeps the previous floor
    /// (compaction publishes no new memtable data); `defer_manifest`
    /// parks the flip, cleanup, and prune until
    /// [`finish_commit`](Self::finish_commit).
    fn persist_epoch(
        &self,
        runs: &[Run<D, T, C>],
        live: usize,
        high_water: Option<u64>,
        defer_manifest: bool,
    ) -> Result<(), WalError>;

    /// Completes a deferred persist after the engine-level manifest
    /// commit: deletes superseded files and requests the parked prune.
    fn finish_commit(&self) -> Result<(), WalError>;
}

/// Which run file holds each published run, keyed by `Arc` identity.
/// Holding the `Arc` clone in the map pins the allocation, so pointer
/// identity cannot be recycled while the entry lives (no ABA).
struct PersistState<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    gen: u64,
    high_water: u64,
    next_run_id: u64,
    map: Vec<(Run<D, T, C>, u64)>,
    /// A deferred persist happened; `finish_commit` owes cleanup.
    deferred: bool,
    pending_cleanup: Vec<PathBuf>,
    pending_prune: Option<u64>,
}

/// The sole [`DurabilityHook`] implementation: one per shard of a
/// durable store.
pub(crate) struct WalShard<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    j: usize,
    dir: PathBuf,
    dims: u8,
    engine: Arc<WalEngine>,
    persist: Mutex<PersistState<D, T, C>>,
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> fmt::Debug for WalShard<D, T, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalShard")
            .field("shard", &self.j)
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl<const D: usize, T, C: SpaceFillingCurve<D> + Clone> WalShard<D, T, C> {
    /// A hook resuming from recovered state: `runs` paired with the run
    /// file ids the checkpoint listed (empty on a fresh open).
    pub(crate) fn new(
        j: usize,
        dir: PathBuf,
        engine: Arc<WalEngine>,
        gen: u64,
        high_water: u64,
        recovered_runs: Vec<(Run<D, T, C>, u64)>,
    ) -> Self {
        let next_run_id = recovered_runs
            .iter()
            .map(|&(_, id)| id + 1)
            .max()
            .unwrap_or(1);
        Self {
            j,
            dir,
            dims: D as u8,
            engine,
            persist: Mutex::new(PersistState {
                gen,
                high_water,
                next_run_id,
                map: recovered_runs,
                deferred: false,
                pending_cleanup: Vec::new(),
                pending_prune: None,
            }),
        }
    }
}

impl<const D: usize, T, C> DurabilityHook<D, T, C> for WalShard<D, T, C>
where
    T: WalPayload + Send + Sync,
    C: SpaceFillingCurve<D> + Clone + Send + Sync,
{
    fn encode_payload(&self, payload: &T) -> Vec<u8> {
        let mut out = Vec::new();
        payload.encode_payload(&mut out);
        out
    }

    fn log_write(
        &self,
        seq: u64,
        point: &Point<D>,
        payload: Option<Vec<u8>>,
        wait: bool,
    ) -> Result<(), WalError> {
        let mut frame = Vec::new();
        encode_frame(&mut frame, seq, point, payload.as_deref());
        self.engine.committer.append(self.j, seq, 1, frame, wait)
    }

    fn log_batch(
        &self,
        records: &[(u64, Point<D>, Option<Vec<u8>>)],
        wait: bool,
    ) -> Result<(), WalError> {
        // Greedy chunking at the frame body limit; every chunk takes at
        // least one record, so even a record near MAX_BODY still frames.
        let mut start = 0;
        while start < records.len() {
            let mut body = BATCH_HEADER;
            let mut end = start;
            while end < records.len() {
                let len = batch_entry_len::<D>(records[end].2.as_ref().map_or(0, Vec::len));
                if end > start && body + len > MAX_BODY {
                    break;
                }
                body += len;
                end += 1;
            }
            let chunk = &records[start..end];
            let mut frame = Vec::new();
            encode_batch_frame(&mut frame, chunk);
            let max_seq = chunk.iter().map(|&(seq, _, _)| seq).max().expect(">= 1");
            let last = end == records.len();
            self.engine
                .committer
                .append(self.j, max_seq, chunk.len(), frame, wait && last)?;
            start = end;
        }
        Ok(())
    }

    fn persist_epoch(
        &self,
        runs: &[Run<D, T, C>],
        live: usize,
        high_water: Option<u64>,
        defer_manifest: bool,
    ) -> Result<(), WalError> {
        let mut st = self.persist.lock().expect("persist state poisoned");
        let hw = high_water.unwrap_or(st.high_water);
        // Write files for runs this shard has not persisted yet;
        // unchanged runs keep their file (identity match — runs are
        // immutable, so a pointer match is a content match).
        let mut new_map: Vec<(Run<D, T, C>, u64)> = Vec::with_capacity(runs.len());
        let mut ids = Vec::with_capacity(runs.len());
        for run in runs {
            let id = match st.map.iter().find(|(r, _)| Arc::ptr_eq(r, run)) {
                Some(&(_, id)) => id,
                None => {
                    let id = st.next_run_id;
                    st.next_run_id += 1;
                    write_file(
                        &run_path(&self.dir, id),
                        &super::manifest::encode_run(run.as_ref()),
                    )?;
                    id
                }
            };
            new_map.push((Arc::clone(run), id));
            ids.push(id);
        }
        let gen = st.gen + 1;
        write_file(
            &ckpt_path(&self.dir, gen),
            &Checkpoint {
                high_water: hw,
                live: live as u64,
                run_ids: ids,
            }
            .encode(self.dims),
        )?;
        sync_dir(&self.dir)?;
        // Everything the old generation referenced and the new one does
        // not becomes garbage — but only after the manifest flip below
        // makes the new generation the referenced one.
        let mut stale: Vec<PathBuf> = st
            .map
            .iter()
            .filter(|(old, _)| !new_map.iter().any(|(new, _)| Arc::ptr_eq(new, old)))
            .map(|&(_, id)| run_path(&self.dir, id))
            .collect();
        if st.gen > 0 {
            stale.push(ckpt_path(&self.dir, st.gen));
        }
        st.gen = gen;
        st.high_water = hw;
        st.map = new_map;
        self.engine.set_gen(self.j, gen, !defer_manifest)?;
        if defer_manifest {
            st.deferred = true;
            st.pending_cleanup.append(&mut stale);
            st.pending_prune = Some(hw);
        } else {
            for path in stale {
                let _ = fs::remove_file(path);
            }
            self.engine.committer.request_prune(self.j, hw);
        }
        Ok(())
    }

    fn finish_commit(&self) -> Result<(), WalError> {
        let mut st = self.persist.lock().expect("persist state poisoned");
        if !st.deferred {
            return Ok(());
        }
        st.deferred = false;
        for path in st.pending_cleanup.drain(..) {
            let _ = fs::remove_file(path);
        }
        if let Some(hw) = st.pending_prune.take() {
            self.engine.committer.request_prune(self.j, hw);
        }
        Ok(())
    }
}
