//! Reopening a durable store: load the manifest-referenced checkpoint
//! and run files, scan the WAL segments, classify damage, and hand the
//! engine everything it needs to rebuild each shard.
//!
//! The invariants this module enforces are the crash-consistency
//! contract of the whole WAL (see the module docs in [`super`]):
//!
//! * Only the **manifest-referenced** generation of each shard is
//!   trusted; newer checkpoints or run files from an interrupted flush /
//!   rebalance are garbage-collected, which *is* the rollback.
//! * A referenced file that is missing or fails its checksum is
//!   [`WalError::Corrupt`] — loudly, with the path and offset.
//! * WAL frames below the checkpoint high-water are skipped (their
//!   records live in runs); frames at or above it are replayed.
//! * Damage at the very tail of the *newest* segment is a torn append
//!   (only ever unacknowledged writes) and is discarded; damage anywhere
//!   else is corruption and fails the open.

use std::fs;
use std::path::Path;
use std::time::Instant;

use sfc_core::SpaceFillingCurve;
use sfc_partition::Partition;

use super::committer::ShardLogState;
use super::manifest::{
    ckpt_path, manifest_path, parse_numbered, run_path, segment_path, shard_dir, sync_dir,
    Checkpoint, Manifest,
};
use super::record::{
    check_segment_header, decode_body_records, parse_frame, FrameOutcome, WalPayload, WalRecord,
    SEGMENT_HEADER,
};
use super::{RecoveryStats, ShardRecoveryStats, WalConfig, WalError};
use crate::view::Run;
use rayon::prelude::*;

/// Everything recovery reconstructed for one shard.
pub(crate) struct RecoveredShard<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    /// The checkpointed run stack (oldest first) with each run's file id
    /// — the persist map the shard's hook resumes with.
    pub(crate) runs: Vec<(Run<D, T, C>, u64)>,
    /// The checkpoint's live count (records visible in `runs`).
    pub(crate) epoch_live: usize,
    /// The WAL replay floor.
    pub(crate) high_water: u64,
    /// The checkpoint generation the manifest referenced.
    pub(crate) gen: u64,
    /// Replayable records (`seq >= high_water`), sorted by seq.
    pub(crate) records: Vec<WalRecord<D, T>>,
    /// Surviving segment files, for the committer's pruner.
    pub(crate) log: ShardLogState,
}

/// One shard's recovery outcome: the rebuilt shard plus its replay
/// stats, or the first error that stopped the scan.
type ShardRecovery<const D: usize, T, C> =
    Result<(RecoveredShard<D, T, C>, ShardRecoveryStats), WalError>;

/// The outcome of scanning a store directory.
pub(crate) struct RecoveredStore<const D: usize, T, C: SpaceFillingCurve<D> + Clone> {
    pub(crate) manifest: Manifest,
    pub(crate) shards: Vec<RecoveredShard<D, T, C>>,
    pub(crate) stats: RecoveryStats,
}

fn read(path: &Path) -> Result<Vec<u8>, WalError> {
    fs::read(path).map_err(|e| WalError::io(path, &e))
}

/// Opens (or initialises) the persistent state under `config.dir` for a
/// `parts`-shard store over `curve`. Fresh directories get a committed
/// manifest with uniform boundaries; existing ones are validated,
/// loaded, scanned, and garbage-collected.
pub(crate) fn recover<const D: usize, T, C>(
    config: &WalConfig,
    curve: &C,
    parts: usize,
) -> Result<RecoveredStore<D, T, C>, WalError>
where
    T: WalPayload + Send + Sync,
    C: SpaceFillingCurve<D> + Clone + Send + Sync,
{
    let start = Instant::now();
    let dir = &config.dir;
    fs::create_dir_all(dir).map_err(|e| WalError::io(dir, &e))?;
    for j in 0..parts {
        let sd = shard_dir(dir, j);
        fs::create_dir_all(&sd).map_err(|e| WalError::io(&sd, &e))?;
    }
    let mpath = manifest_path(dir);
    let mut stats = RecoveryStats::default();

    let manifest = if mpath.exists() {
        let m = Manifest::decode(&read(&mpath)?, &mpath, D as u8)?;
        if m.gens.len() != parts {
            return Err(WalError::Mismatch {
                detail: format!(
                    "store on disk has {} shards, open asked for {parts}",
                    m.gens.len()
                ),
            });
        }
        if *m.boundaries.last().expect("decode checked count") != curve.grid().n() {
            return Err(WalError::Mismatch {
                detail: format!(
                    "store on disk covers {} cells, curve has {}",
                    m.boundaries.last().expect("checked"),
                    curve.grid().n()
                ),
            });
        }
        m
    } else {
        let m = Manifest {
            gens: vec![0; parts],
            boundaries: Partition::uniform(curve.grid().n(), parts)
                .boundaries()
                .to_vec(),
        };
        m.commit(dir, D as u8)?;
        sync_dir(dir)?;
        m
    };

    // Shards recover from disjoint directories and share no state, so
    // the per-shard scans and replays fan out across the scoped thread
    // pool (`recovery_threads == 1` keeps it on the opening thread; a
    // single-shard store runs inline either way).
    let serial = config.recovery_threads == 1 || parts <= 1;
    let recovered: Vec<ShardRecovery<D, T, C>> = if serial {
        manifest
            .gens
            .iter()
            .enumerate()
            .map(|(j, &gen)| recover_shard::<D, T, C>(&shard_dir(dir, j), gen, curve))
            .collect()
    } else {
        manifest
            .gens
            .iter()
            .copied()
            .enumerate()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(j, gen)| recover_shard::<D, T, C>(&shard_dir(dir, j), gen, curve))
            .collect()
    };
    stats.replay_threads = if serial {
        1
    } else {
        std::thread::available_parallelism()
            .map_or(2, std::num::NonZeroUsize::get)
            .max(2)
            .min(parts)
    };
    let mut shards = Vec::with_capacity(parts);
    for result in recovered {
        let (shard, ss) = result?;
        stats.replayed_records += ss.replayed_records;
        stats.skipped_records += ss.skipped_records;
        stats.runs_loaded += ss.runs_loaded;
        stats.segments_scanned += ss.segments_scanned;
        stats.wal_bytes += ss.wal_bytes;
        stats.torn_tail_bytes += ss.torn_tail_bytes;
        stats.orphans_removed += ss.orphans_removed;
        stats.shards.push(ss);
        shards.push(shard);
    }
    stats.elapsed = start.elapsed();
    Ok(RecoveredStore {
        manifest,
        shards,
        stats,
    })
}

/// Loads one shard: checkpointed runs, WAL replay set, surviving
/// segments, and the orphan sweep. Self-contained (returns its own
/// stats) so shards can recover on separate threads.
fn recover_shard<const D: usize, T, C>(
    sd: &Path,
    gen: u64,
    curve: &C,
) -> Result<(RecoveredShard<D, T, C>, ShardRecoveryStats), WalError>
where
    T: WalPayload,
    C: SpaceFillingCurve<D> + Clone,
{
    let shard_start = Instant::now();
    let mut stats = ShardRecoveryStats::default();
    // Inventory the directory once.
    let mut ckpt_ids = Vec::new();
    let mut run_ids = Vec::new();
    let mut seg_ids = Vec::new();
    let mut tmp_files = Vec::new();
    let entries = fs::read_dir(sd).map_err(|e| WalError::io(sd, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| WalError::io(sd, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = parse_numbered(name, "ckpt-", "") {
            ckpt_ids.push(id);
        } else if let Some(id) = parse_numbered(name, "run-", ".run") {
            run_ids.push(id);
        } else if let Some(id) = parse_numbered(name, "wal-", ".log") {
            seg_ids.push(id);
        } else if name.ends_with(".tmp") {
            tmp_files.push(entry.path());
        }
    }

    // The referenced checkpoint (gen 0 = the shard never flushed).
    let ckpt = if gen > 0 {
        let path = ckpt_path(sd, gen);
        if !path.exists() {
            return Err(WalError::corrupt(
                &path,
                0,
                "manifest references a missing checkpoint",
            ));
        }
        Checkpoint::decode(&read(&path)?, &path, D as u8)?
    } else {
        Checkpoint {
            high_water: 0,
            live: 0,
            run_ids: Vec::new(),
        }
    };
    let mut runs = Vec::with_capacity(ckpt.run_ids.len());
    for &id in &ckpt.run_ids {
        let path = run_path(sd, id);
        if !path.exists() {
            return Err(WalError::corrupt(
                &path,
                0,
                "checkpoint references a missing run file",
            ));
        }
        let run = super::manifest::decode_run::<D, T, C>(&read(&path)?, &path, curve)?;
        stats.runs_loaded += 1;
        runs.push((run, id));
    }

    // Orphan sweep: anything the referenced generation does not name is
    // debris from an interrupted flush or rebalance — removing it is the
    // rollback.
    for &id in ckpt_ids.iter().filter(|&&id| id != gen) {
        if fs::remove_file(ckpt_path(sd, id)).is_ok() {
            stats.orphans_removed += 1;
        }
    }
    for &id in run_ids.iter().filter(|id| !ckpt.run_ids.contains(id)) {
        if fs::remove_file(run_path(sd, id)).is_ok() {
            stats.orphans_removed += 1;
        }
    }
    for path in &tmp_files {
        if fs::remove_file(path).is_ok() {
            stats.orphans_removed += 1;
        }
    }

    // Scan the log, oldest segment first.
    seg_ids.sort_unstable();
    let last_seg = seg_ids.last().copied();
    let mut records: Vec<WalRecord<D, T>> = Vec::new();
    let mut segments = Vec::with_capacity(seg_ids.len());
    for &id in &seg_ids {
        let path = segment_path(sd, id);
        let buf = read(&path)?;
        stats.segments_scanned += 1;
        stats.wal_bytes += buf.len() as u64;
        let is_last = Some(id) == last_seg;
        let mut max_seq: Option<u64> = None;
        if buf.len() < SEGMENT_HEADER {
            // A crash can tear even the header write of a brand-new
            // segment; that file cannot contain an acked record.
            if is_last {
                stats.torn_tail_bytes += buf.len() as u64;
                segments.push((id, None));
                continue;
            }
            return Err(WalError::corrupt(&path, 0, "segment header truncated"));
        }
        check_segment_header(&buf, D as u8)
            .map_err(|detail| WalError::corrupt(&path, 0, detail))?;
        let mut off = SEGMENT_HEADER;
        loop {
            if off == buf.len() {
                break;
            }
            match parse_frame(&buf, off) {
                FrameOutcome::Ok { body, end } => {
                    // A frame carries one record (v1) or a whole batch
                    // slice (v2) — the checksum already passed, so a
                    // batch decodes in full or the segment is corrupt.
                    let mut frame_records: Vec<WalRecord<D, T>> = Vec::new();
                    decode_body_records(body, &mut frame_records)
                        .map_err(|detail| WalError::corrupt(&path, off as u64, detail))?;
                    for rec in frame_records {
                        max_seq = Some(max_seq.map_or(rec.seq, |m: u64| m.max(rec.seq)));
                        if rec.seq >= ckpt.high_water {
                            records.push(rec);
                        } else {
                            stats.skipped_records += 1;
                        }
                    }
                    off = end;
                }
                FrameOutcome::Truncated => {
                    if is_last {
                        stats.torn_tail_bytes += (buf.len() - off) as u64;
                        break;
                    }
                    return Err(WalError::corrupt(
                        &path,
                        off as u64,
                        "truncated frame before the log tail",
                    ));
                }
                FrameOutcome::BadCrc { end } => {
                    // A checksum failure in the final frame of the final
                    // segment is indistinguishable from a torn append of
                    // that frame — and can only hold an unacked write.
                    // Anywhere else it is bit rot under acked data.
                    if is_last && end == buf.len() {
                        stats.torn_tail_bytes += (buf.len() - off) as u64;
                        break;
                    }
                    return Err(WalError::corrupt(
                        &path,
                        off as u64,
                        "record checksum mismatch",
                    ));
                }
            }
        }
        segments.push((id, max_seq));
    }
    records.sort_by_key(|r| r.seq);
    stats.replayed_records += records.len();
    stats.elapsed = shard_start.elapsed();

    Ok((
        RecoveredShard {
            runs,
            epoch_live: ckpt.live as usize,
            high_water: ckpt.high_water,
            gen,
            records,
            log: ShardLogState {
                dir: sd.to_path_buf(),
                next_segment_id: seg_ids.last().map_or(1, |&id| id + 1),
                segments,
            },
        },
        stats,
    ))
}
