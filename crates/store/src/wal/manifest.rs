//! Persistent-state file formats and atomic-write helpers: run files,
//! per-shard checkpoints, and the root `MANIFEST`.
//!
//! Every file is CRC32C-trailed and self-identifying (magic + version +
//! dimensionality). None of them is ever modified in place: runs and
//! checkpoints are written once under a fresh name and referenced
//! afterwards; the manifest is replaced by write-temp → fsync → rename →
//! fsync-dir, which is the *only* commit point of the whole store.
//!
//! ```text
//! <dir>/MANIFEST            magic "SFMF" | parts | per-shard ckpt gens
//!                           | partition boundaries | crc
//! <dir>/shard3/ckpt-000042  magic "SFCK" | high_water | live
//!                           | run-file ids (stack order) | crc
//! <dir>/shard3/run-000007.run
//!                           magic "SFRN" | record count | per record:
//!                           tag, coords, payload bytes | crc
//! <dir>/shard3/wal-000011.log
//!                           see `record` for the frame format
//! ```
//!
//! Run files store points, not curve keys: the curve maps cells to keys
//! bijectively, so a load recomputes `curve.index_of(point)` and saves
//! 16 bytes per record on disk.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sfc_core::{CurveIndex, Point, SpaceFillingCurve};
use sfc_index::SfcIndex;

use super::record::{crc32c, WalPayload};
use super::WalError;
use crate::view::Run;

const MANIFEST_MAGIC: &[u8; 4] = b"SFMF";
const CKPT_MAGIC: &[u8; 4] = b"SFCK";
const RUN_MAGIC: &[u8; 4] = b"SFRN";
const FORMAT_VERSION: u8 = 1;

/// `<dir>/MANIFEST`.
pub(crate) fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

/// `<dir>/shard<j>`.
pub(crate) fn shard_dir(dir: &Path, j: usize) -> PathBuf {
    dir.join(format!("shard{j}"))
}

/// `<shard_dir>/run-<id>.run`.
pub(crate) fn run_path(shard_dir: &Path, id: u64) -> PathBuf {
    shard_dir.join(format!("run-{id:06}.run"))
}

/// `<shard_dir>/ckpt-<gen>`.
pub(crate) fn ckpt_path(shard_dir: &Path, gen: u64) -> PathBuf {
    shard_dir.join(format!("ckpt-{gen:06}"))
}

/// `<shard_dir>/wal-<id>.log`.
pub(crate) fn segment_path(shard_dir: &Path, id: u64) -> PathBuf {
    shard_dir.join(format!("wal-{id:06}.log"))
}

/// Parses `<stem>-<number><suffix>` file names, e.g. `run-000007.run`.
pub(crate) fn parse_numbered(name: &str, stem: &str, suffix: &str) -> Option<u64> {
    let rest = name.strip_prefix(stem)?.strip_suffix(suffix)?;
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Fsyncs a directory so renames/creations inside it survive a crash.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), WalError> {
    let d = File::open(dir).map_err(|e| WalError::io(dir, &e))?;
    d.sync_all().map_err(|e| WalError::io(dir, &e))
}

/// Writes `bytes` to `path` and syncs the file (not the directory — the
/// caller syncs once after a batch of creations).
pub(crate) fn write_file(path: &Path, bytes: &[u8]) -> Result<(), WalError> {
    let mut f = File::create(path).map_err(|e| WalError::io(path, &e))?;
    f.write_all(bytes).map_err(|e| WalError::io(path, &e))?;
    f.sync_all().map_err(|e| WalError::io(path, &e))
}

/// Atomically replaces `path` with `bytes`: temp file in the same
/// directory, fsync, rename over, fsync the directory.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), WalError> {
    let tmp = path.with_extension("tmp");
    write_file(&tmp, bytes)?;
    fs::rename(&tmp, path).map_err(|e| WalError::io(path, &e))?;
    sync_dir(path.parent().unwrap_or(Path::new(".")))
}

/// A bounds-checked little-endian reader over a loaded file, turning
/// every short read into a typed [`WalError::Corrupt`].
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8], path: &'a Path) -> Self {
        Self { buf, pos: 0, path }
    }

    pub(crate) fn offset(&self) -> u64 {
        self.pos as u64
    }

    fn corrupt(&self, detail: impl Into<String>) -> WalError {
        WalError::corrupt(self.path, self.pos as u64, detail)
    }

    pub(crate) fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WalError> {
        if self.buf.len() - self.pos < n {
            return Err(self.corrupt(format!("file ends inside {what}")));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, WalError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn u128(&mut self, what: &str) -> Result<u128, WalError> {
        Ok(u128::from_le_bytes(
            self.take(16, what)?.try_into().expect("16 bytes"),
        ))
    }

    /// Checks an 8-byte header (magic, version, dims) and a trailing
    /// CRC32C over everything between header and trailer; leaves the
    /// cursor after the header and fences the body before the trailer.
    pub(crate) fn open_checked(&mut self, magic: &[u8; 4], dims: u8) -> Result<(), WalError> {
        let head = self.take(8, "file header")?;
        if &head[..4] != magic {
            return Err(self.corrupt("bad file magic"));
        }
        if head[4] != FORMAT_VERSION {
            return Err(self.corrupt(format!("unsupported format version {}", head[4])));
        }
        if head[5] != dims {
            return Err(self.corrupt(format!("file dims {} != store dims {dims}", head[5])));
        }
        if head[6] != 0 || head[7] != 0 {
            return Err(self.corrupt("nonzero reserved header bytes"));
        }
        if self.buf.len() < self.pos + 4 {
            return Err(self.corrupt("file too short for checksum trailer"));
        }
        let body = &self.buf[self.pos..self.buf.len() - 4];
        let want = u32::from_le_bytes(self.buf[self.buf.len() - 4..].try_into().expect("4 bytes"));
        if crc32c(body) != want {
            return Err(self.corrupt("checksum mismatch"));
        }
        self.buf = &self.buf[..self.buf.len() - 4];
        Ok(())
    }
}

fn header(magic: &[u8; 4], dims: u8) -> [u8; 8] {
    let mut h = [0u8; 8];
    h[..4].copy_from_slice(magic);
    h[4] = FORMAT_VERSION;
    h[5] = dims;
    h
}

/// Appends `crc32c(body)` where `body` is everything after the 8-byte
/// header already in `out`.
fn seal(out: &mut Vec<u8>) {
    let crc = crc32c(&out[8..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

// ---------------------------------------------------------------------
// MANIFEST
// ---------------------------------------------------------------------

/// The store's single source of truth on disk: which checkpoint
/// generation each shard is at, and the partition boundaries those
/// checkpoints were taken under. Replaced atomically; everything not
/// reachable from it is garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Manifest {
    /// Per-shard checkpoint generation (0 = no checkpoint yet).
    pub(crate) gens: Vec<u64>,
    /// Partition boundaries, `parts + 1` entries starting at 0.
    pub(crate) boundaries: Vec<CurveIndex>,
}

impl Manifest {
    pub(crate) fn encode(&self, dims: u8) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 + self.gens.len() * 8 + self.boundaries.len() * 16);
        out.extend_from_slice(&header(MANIFEST_MAGIC, dims));
        out.extend_from_slice(&(self.gens.len() as u32).to_le_bytes());
        for g in &self.gens {
            out.extend_from_slice(&g.to_le_bytes());
        }
        out.extend_from_slice(&(self.boundaries.len() as u32).to_le_bytes());
        for b in &self.boundaries {
            out.extend_from_slice(&b.to_le_bytes());
        }
        seal(&mut out);
        out
    }

    pub(crate) fn decode(buf: &[u8], path: &Path, dims: u8) -> Result<Self, WalError> {
        let mut r = ByteReader::new(buf, path);
        r.open_checked(MANIFEST_MAGIC, dims)?;
        let parts = r.u32("shard count")? as usize;
        if parts == 0 || parts > 1 << 20 {
            return Err(WalError::corrupt(
                path,
                r.offset(),
                "implausible shard count",
            ));
        }
        let mut gens = Vec::with_capacity(parts);
        for _ in 0..parts {
            gens.push(r.u64("checkpoint generation")?);
        }
        let nb = r.u32("boundary count")? as usize;
        if nb != parts + 1 {
            return Err(WalError::corrupt(
                path,
                r.offset(),
                format!("{nb} boundaries for {parts} shards"),
            ));
        }
        let mut boundaries = Vec::with_capacity(nb);
        for _ in 0..nb {
            boundaries.push(r.u128("partition boundary")?);
        }
        Ok(Manifest { gens, boundaries })
    }

    /// Writes this manifest atomically into `dir`.
    pub(crate) fn commit(&self, dir: &Path, dims: u8) -> Result<(), WalError> {
        write_atomic(&manifest_path(dir), &self.encode(dims))
    }
}

// ---------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------

/// One shard's persisted epoch description: the WAL replay floor
/// (`high_water`), the epoch live count, and the run-file ids of the
/// stack in order (oldest first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Checkpoint {
    pub(crate) high_water: u64,
    pub(crate) live: u64,
    pub(crate) run_ids: Vec<u64>,
}

impl Checkpoint {
    pub(crate) fn encode(&self, dims: u8) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 20 + self.run_ids.len() * 8);
        out.extend_from_slice(&header(CKPT_MAGIC, dims));
        out.extend_from_slice(&self.high_water.to_le_bytes());
        out.extend_from_slice(&self.live.to_le_bytes());
        out.extend_from_slice(&(self.run_ids.len() as u32).to_le_bytes());
        for id in &self.run_ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        seal(&mut out);
        out
    }

    pub(crate) fn decode(buf: &[u8], path: &Path, dims: u8) -> Result<Self, WalError> {
        let mut r = ByteReader::new(buf, path);
        r.open_checked(CKPT_MAGIC, dims)?;
        let high_water = r.u64("high water")?;
        let live = r.u64("live count")?;
        let n = r.u32("run count")? as usize;
        if n > 1 << 20 {
            return Err(WalError::corrupt(path, r.offset(), "implausible run count"));
        }
        let mut run_ids = Vec::with_capacity(n);
        for _ in 0..n {
            run_ids.push(r.u64("run id")?);
        }
        Ok(Checkpoint {
            high_water,
            live,
            run_ids,
        })
    }
}

// ---------------------------------------------------------------------
// Run files
// ---------------------------------------------------------------------

/// Serialises one immutable run. Tombstone slots write the tag only;
/// live slots append a length-prefixed payload.
pub(crate) fn encode_run<const D: usize, T, C>(run: &SfcIndex<D, T, C>) -> Vec<u8>
where
    T: WalPayload,
    C: SpaceFillingCurve<D> + Clone,
{
    let mut out = Vec::with_capacity(8 + 8 + run.len() * (1 + 4 * D + 8));
    out.extend_from_slice(&header(RUN_MAGIC, D as u8));
    out.extend_from_slice(&(run.len() as u64).to_le_bytes());
    let mut scratch = Vec::new();
    for i in 0..run.len() {
        let p = run.point_at(i);
        match run.payload_at(i) {
            Some(v) => {
                out.push(1);
                for a in 0..D {
                    out.extend_from_slice(&p.coord(a).to_le_bytes());
                }
                scratch.clear();
                v.encode_payload(&mut scratch);
                out.extend_from_slice(&(scratch.len() as u32).to_le_bytes());
                out.extend_from_slice(&scratch);
            }
            None => {
                out.push(0);
                for a in 0..D {
                    out.extend_from_slice(&p.coord(a).to_le_bytes());
                }
            }
        }
    }
    seal(&mut out);
    out
}

/// Loads a run file back into an immutable index, recomputing each key
/// from its point via the curve.
pub(crate) fn decode_run<const D: usize, T, C>(
    buf: &[u8],
    path: &Path,
    curve: &C,
) -> Result<Run<D, T, C>, WalError>
where
    T: WalPayload,
    C: SpaceFillingCurve<D> + Clone,
{
    let mut r = ByteReader::new(buf, path);
    r.open_checked(RUN_MAGIC, D as u8)?;
    let count = r.u64("record count")? as usize;
    let mut keys = Vec::with_capacity(count);
    let mut points = Vec::with_capacity(count);
    let mut payloads: Vec<Option<T>> = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = r.u8("record tag")?;
        let mut coords = [0u32; D];
        for c in coords.iter_mut() {
            *c = r.u32("coordinate")?;
        }
        let p = Point::new(coords);
        let slot = match tag {
            0 => None,
            1 => {
                let len = r.u32("payload length")? as usize;
                let bytes = r.take(len, "payload")?;
                Some(T::decode_payload(bytes).ok_or_else(|| {
                    WalError::corrupt(path, r.offset(), "payload failed to decode")
                })?)
            }
            other => {
                return Err(WalError::corrupt(
                    path,
                    r.offset(),
                    format!("unknown run record tag {other}"),
                ))
            }
        };
        keys.push(curve.index_of(p));
        points.push(p);
        payloads.push(slot);
    }
    if !keys.windows(2).all(|w| w[0] < w[1]) {
        return Err(WalError::corrupt(
            path,
            0,
            "run keys not strictly increasing",
        ));
    }
    Ok(Arc::new(SfcIndex::from_sorted_versions(
        curve.clone(),
        keys,
        points,
        payloads,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{Grid, ZCurve};

    #[test]
    fn manifest_roundtrip_and_tamper_detection() {
        let m = Manifest {
            gens: vec![0, 3, 7],
            boundaries: vec![0, 100, 200, 1024],
        };
        let bytes = m.encode(2);
        let back = Manifest::decode(&bytes, Path::new("MANIFEST"), 2).unwrap();
        assert_eq!(back, m);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                Manifest::decode(&bad, Path::new("MANIFEST"), 2).is_err(),
                "flip at {i} must be rejected"
            );
        }
    }

    #[test]
    fn checkpoint_roundtrip() {
        let c = Checkpoint {
            high_water: 99,
            live: 42,
            run_ids: vec![1, 4, 6],
        };
        let bytes = c.encode(3);
        assert_eq!(Checkpoint::decode(&bytes, Path::new("ckpt"), 3).unwrap(), c);
        assert!(Checkpoint::decode(&bytes, Path::new("ckpt"), 2).is_err());
    }

    #[test]
    fn run_roundtrip_preserves_records_and_tombstones() {
        let curve = ZCurve::<2>::over(Grid::new(4).unwrap());
        let points = [
            Point::new([1u32, 2]),
            Point::new([3, 1]),
            Point::new([5, 9]),
        ];
        let mut keys: Vec<_> = points.iter().map(|&p| curve.index_of(p)).collect();
        let mut idx: Vec<usize> = (0..3).collect();
        idx.sort_by_key(|&i| keys[i]);
        let points: Vec<_> = idx.iter().map(|&i| points[i]).collect();
        keys.sort_unstable();
        let payloads = vec![Some(10u64), None, Some(30)];
        let run = SfcIndex::from_sorted_versions(curve, keys, points.clone(), payloads);
        let bytes = encode_run(&run);
        let back: Run<2, u64, _> = decode_run(&bytes, Path::new("run"), &curve).unwrap();
        assert_eq!(back.len(), 3);
        for i in 0..3 {
            assert_eq!(back.point_at(i), run.point_at(i));
            assert_eq!(back.key_at(i), run.key_at(i));
            assert_eq!(back.payload_at(i), run.payload_at(i));
        }
    }

    #[test]
    fn numbered_names_parse() {
        assert_eq!(parse_numbered("run-000007.run", "run-", ".run"), Some(7));
        assert_eq!(parse_numbered("ckpt-000042", "ckpt-", ""), Some(42));
        assert_eq!(parse_numbered("run-.run", "run-", ".run"), None);
        assert_eq!(parse_numbered("run-x7.run", "run-", ".run"), None);
        assert_eq!(parse_numbered("wal-0001.log", "run-", ".run"), None);
    }
}
