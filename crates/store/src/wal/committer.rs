//! The group-commit engine: an in-memory ticketed commit queue drained
//! by one dedicated committer thread that owns every WAL file handle.
//!
//! Writers call [`Committer::append`] — push the encoded frame, take a
//! ticket, optionally wait until the durable ticket passes theirs. The
//! committer takes *everything* pending in one swap, appends each
//! shard's frames to its open segment, fsyncs each touched segment once,
//! then advances the durable ticket and wakes all waiters: one fsync
//! amortised over the whole group. Prune requests ride the same queue
//! but are processed *after* acks (the commit/prune split — reclaiming
//! space never sits on a writer's latency path).
//!
//! Failure model: the first I/O error is stored and the committer parks.
//! Every waiting and future append observes the same sticky error; the
//! durable ticket never moves past a failed group, so no writer is ever
//! acked for bytes that might not be on disk.
//!
//! Shutdown comes in two flavours: [`Committer::shutdown`] drains the
//! queue (every accepted append is made durable, then the thread exits)
//! and is what `Drop` uses; [`Committer::abort`] kills the thread
//! mid-flight without a final fsync — the crash lever the recovery
//! harness pulls.

use std::collections::BTreeSet;
use std::fs::{self, File};
use std::io::Write;
use std::mem;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::manifest::{segment_path, sync_dir};
use super::record::{segment_header, SEGMENT_HEADER};
use super::{WalConfig, WalError};
use crate::obs::WalMetrics;

/// One queued append: target shard, the highest record sequence number
/// in the frame (for segment pruning metadata), how many records the
/// frame carries (one for a v1 frame, the batch count for a coalesced
/// v2 frame), and the fully framed bytes.
struct Pending {
    shard: usize,
    seq: u64,
    records: usize,
    frame: Vec<u8>,
}

/// Shared queue state behind the commit-queue mutex (a leaf lock: all
/// file I/O happens with it released).
struct QueueState {
    pending: Vec<Pending>,
    /// Records across `pending` (a coalesced frame counts all of them).
    pending_records: usize,
    /// Frame bytes across `pending` — drives the byte-bound trigger.
    pending_bytes: u64,
    prunes: Vec<(usize, u64)>,
    /// Ticket handed to the *next* append (tickets start at 1).
    next_ticket: u64,
    /// Highest ticket whose group has been fsynced.
    durable: u64,
    /// A `sync()` barrier is waiting: skip the batching linger.
    hurry: bool,
    /// Writers currently blocked waiting for a durable ack. While zero,
    /// the committer may defer the fsync across drains until
    /// `fsync_every` records have accumulated (nobody is owed an ack).
    waiters: usize,
    /// The committer is parked on the work condvar. Writers skip the
    /// wake syscall while it is awake — it re-checks the queue before
    /// ever sleeping.
    idle: bool,
    shutdown: bool,
    abort: bool,
    /// Sticky first failure; cloned to every affected caller.
    error: Option<WalError>,
    metrics: Option<Arc<WalMetrics>>,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals the committer: work arrived / mode changed.
    work: Condvar,
    /// Signals writers: the durable ticket advanced (or the log died).
    done: Condvar,
}

/// What recovery found on disk for one shard, handed to the committer so
/// pruning keeps working across restarts. Pre-existing segments are
/// never appended to — the first post-recovery append opens a fresh one.
#[derive(Debug, Clone)]
pub(crate) struct ShardLogState {
    pub(crate) dir: PathBuf,
    /// `(segment id, max record seq)` for each surviving segment, or
    /// `None` for a segment with no complete records.
    pub(crate) segments: Vec<(u64, Option<u64>)>,
    pub(crate) next_segment_id: u64,
}

/// A sealed or inherited segment eligible for pruning.
struct SealedSeg {
    path: PathBuf,
    /// Highest record seq in the segment; `None` = no complete records
    /// (prunable under any high-water).
    max_seq: Option<u64>,
}

/// The committer thread's exclusive view of one shard's log files.
struct ShardFiles {
    dir: PathBuf,
    open: Option<OpenSeg>,
    sealed: Vec<SealedSeg>,
    next_id: u64,
    /// Per-batch scratch: frames accumulated for this shard.
    buf: Vec<u8>,
    buf_max_seq: u64,
    buf_any: bool,
    /// The open segment has bytes written to the OS but not yet
    /// fsynced (records under those bytes are not durable/acked yet).
    dirty: bool,
}

struct OpenSeg {
    file: File,
    path: PathBuf,
    bytes: u64,
    max_seq: u64,
}

impl ShardFiles {
    fn segment_count(&self) -> usize {
        self.sealed.len() + usize::from(self.open.is_some())
    }

    /// Appends the batch scratch buffer to the open segment (creating or
    /// rotating as needed). The bytes reach the OS but are **not**
    /// fsynced — [`sync`](Self::sync) makes them durable.
    fn write(&mut self, dims: u8, segment_bytes: u64) -> Result<(), WalError> {
        debug_assert!(self.buf_any);
        // Rotate a full segment before, not after, writing: a batch is
        // never split across two files. A sealed segment is always
        // synced — records must never become durable out of order.
        if let Some(open) = &mut self.open {
            if open.bytes >= segment_bytes {
                if self.dirty {
                    open.file
                        .sync_data()
                        .map_err(|e| WalError::io(&open.path, &e))?;
                    self.dirty = false;
                }
                let open = self.open.take().expect("just checked");
                self.sealed.push(SealedSeg {
                    path: open.path,
                    max_seq: Some(open.max_seq),
                });
            }
        }
        if self.open.is_none() {
            let id = self.next_id;
            self.next_id += 1;
            let path = segment_path(&self.dir, id);
            let mut file = File::create(&path).map_err(|e| WalError::io(&path, &e))?;
            file.write_all(&segment_header(dims))
                .map_err(|e| WalError::io(&path, &e))?;
            sync_dir(&self.dir)?;
            self.open = Some(OpenSeg {
                file,
                path,
                bytes: SEGMENT_HEADER as u64,
                max_seq: 0,
            });
        }
        let open = self.open.as_mut().expect("ensured above");
        open.file
            .write_all(&self.buf)
            .map_err(|e| WalError::io(&open.path, &e))?;
        open.bytes += self.buf.len() as u64;
        open.max_seq = open.max_seq.max(self.buf_max_seq);
        self.buf.clear();
        self.buf_any = false;
        self.buf_max_seq = 0;
        self.dirty = true;
        Ok(())
    }

    /// Fsyncs the open segment if it has unsynced bytes.
    fn sync(&mut self) -> Result<(), WalError> {
        if !self.dirty {
            return Ok(());
        }
        let open = self.open.as_mut().expect("dirty implies an open segment");
        open.file
            .sync_data()
            .map_err(|e| WalError::io(&open.path, &e))?;
        self.dirty = false;
        Ok(())
    }

    /// Deletes every segment wholly below `high_water`. Returns how many
    /// files were removed. Deletion failures are swallowed: a leaked
    /// segment only costs space and is re-pruned (or GC'd at recovery).
    fn prune(&mut self, high_water: u64) -> usize {
        let mut removed = 0;
        self.sealed.retain(|seg| {
            let dead = seg.max_seq.is_none_or(|s| s < high_water);
            if dead && fs::remove_file(&seg.path).is_ok() {
                removed += 1;
                return false;
            }
            true
        });
        // An open segment whose every record is below the high-water is
        // just as dead; drop the handle and the file together (any
        // unsynced bytes it held are below the high-water too — already
        // durable in a published run).
        if let Some(open) = &self.open {
            if open.bytes > SEGMENT_HEADER as u64 && open.max_seq < high_water {
                let open = self.open.take().expect("just checked");
                self.dirty = false;
                drop(open.file);
                if fs::remove_file(&open.path).is_ok() {
                    removed += 1;
                }
            }
        }
        removed
    }
}

/// Handle to the committer thread; see the module docs.
pub(crate) struct Committer {
    shared: Arc<Shared>,
    handle: Mutex<Option<JoinHandle<()>>>,
    /// Mirrors the thread's group bound: writers wake the committer
    /// only when a group is full (or they wait on an ack).
    fsync_every: usize,
    /// Byte-bound companion to `fsync_every`: a group also closes once
    /// this many frame bytes are queued/unsynced. Zero disables it.
    fsync_bytes: u64,
    /// `max_batch_delay > 0`: queued records have a staleness bound, so
    /// the committer must wake on the first queued record to arm it.
    timed: bool,
}

impl std::fmt::Debug for Committer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.shared.state.lock().expect("commit queue poisoned");
        f.debug_struct("Committer")
            .field("next_ticket", &st.next_ticket)
            .field("durable", &st.durable)
            .field("pending", &st.pending.len())
            .field("error", &st.error)
            .finish()
    }
}

impl Committer {
    /// Spawns the committer thread over the per-shard log states
    /// recovery (or a fresh open) produced.
    pub(crate) fn spawn(config: &WalConfig, dims: u8, shards: Vec<ShardLogState>) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                pending: Vec::new(),
                pending_records: 0,
                pending_bytes: 0,
                prunes: Vec::new(),
                next_ticket: 1,
                durable: 0,
                hurry: false,
                waiters: 0,
                idle: false,
                shutdown: false,
                abort: false,
                error: None,
                metrics: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let files: Vec<ShardFiles> = shards
            .into_iter()
            .map(|s| ShardFiles {
                sealed: s
                    .segments
                    .iter()
                    .map(|&(id, max_seq)| SealedSeg {
                        path: segment_path(&s.dir, id),
                        max_seq,
                    })
                    .collect(),
                next_id: s.next_segment_id,
                dir: s.dir,
                open: None,
                buf: Vec::new(),
                buf_max_seq: 0,
                buf_any: false,
                dirty: false,
            })
            .collect();
        let thread_shared = Arc::clone(&shared);
        let fsync_every = config.fsync_every.max(1);
        let fsync_bytes = config.fsync_bytes;
        let max_batch_delay = config.max_batch_delay;
        let segment_bytes = config.segment_bytes;
        let handle = std::thread::Builder::new()
            .name("wal-committer".into())
            .spawn(move || {
                run_committer(
                    &thread_shared,
                    files,
                    dims,
                    fsync_every,
                    fsync_bytes,
                    max_batch_delay,
                    segment_bytes,
                );
            })
            .expect("spawn wal committer thread");
        Committer {
            shared,
            handle: Mutex::new(Some(handle)),
            fsync_every,
            fsync_bytes,
            timed: max_batch_delay > Duration::ZERO,
        }
    }

    /// Installs the metric handles (committer-side counters are recorded
    /// by the thread from the next group on).
    pub(crate) fn set_metrics(&self, metrics: Arc<WalMetrics>) {
        self.shared
            .state
            .lock()
            .expect("commit queue poisoned")
            .metrics = Some(metrics);
    }

    /// Enqueues one framed entry for `shard` carrying `records` records
    /// (one for a plain frame, the batch count for a coalesced frame).
    /// With `wait`, blocks until the frame's group is fsynced (the
    /// durable ack) or the log dies.
    pub(crate) fn append(
        &self,
        shard: usize,
        seq: u64,
        records: usize,
        frame: Vec<u8>,
        wait: bool,
    ) -> Result<(), WalError> {
        let start = Instant::now();
        let mut st = self.shared.state.lock().expect("commit queue poisoned");
        if let Some(e) = &st.error {
            return Err(e.clone());
        }
        if st.shutdown || st.abort {
            return Err(WalError::Shutdown);
        }
        st.pending_records += records;
        st.pending_bytes += frame.len() as u64;
        st.pending.push(Pending {
            shard,
            seq,
            records,
            frame,
        });
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        // Wake the committer only when there is a reason for it to run
        // *now*: this append wants an ack, the group is full (by record
        // count or bytes), or a staleness clock must be armed for the
        // first queued frame. Un-waited frames below the group bounds
        // just accumulate — the next full group, barrier, or shutdown
        // picks them up. (And the wake syscall only matters when the
        // committer is actually parked; while awake it re-checks the
        // queue — and the waiter count, registered below under this same
        // lock hold — before ever sleeping.)
        if st.idle
            && (wait
                || st.pending_records >= self.fsync_every
                || (self.fsync_bytes > 0 && st.pending_bytes >= self.fsync_bytes)
                || (self.timed && st.pending.len() == 1))
        {
            self.shared.work.notify_one();
        }
        if wait {
            st.waiters += 1;
            while st.durable < ticket {
                let died = if st.error.is_some() {
                    st.error.clone()
                } else if st.abort {
                    Some(WalError::Shutdown)
                } else {
                    None
                };
                if let Some(e) = died {
                    st.waiters -= 1;
                    return Err(e);
                }
                st = self.shared.done.wait(st).expect("commit queue poisoned");
            }
            st.waiters -= 1;
        }
        let metrics = st.metrics.clone();
        drop(st);
        if let Some(m) = metrics {
            m.append_ns.record_since(start);
        }
        Ok(())
    }

    /// The durability barrier: returns once every append accepted before
    /// this call is fsynced. Skips the batching linger for the final
    /// group.
    pub(crate) fn sync(&self) -> Result<(), WalError> {
        let mut st = self.shared.state.lock().expect("commit queue poisoned");
        let target = st.next_ticket - 1;
        while st.durable < target {
            if let Some(e) = &st.error {
                return Err(e.clone());
            }
            if st.abort {
                return Err(WalError::Shutdown);
            }
            st.hurry = true;
            self.shared.work.notify_one();
            st = self.shared.done.wait(st).expect("commit queue poisoned");
        }
        match &st.error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Requests deletion of `shard`'s segments wholly below
    /// `high_water`. Returns immediately; the committer prunes after the
    /// next group commit.
    pub(crate) fn request_prune(&self, shard: usize, high_water: u64) {
        let mut st = self.shared.state.lock().expect("commit queue poisoned");
        if st.shutdown || st.abort {
            return;
        }
        st.prunes.push((shard, high_water));
        if st.idle {
            self.shared.work.notify_one();
        }
    }

    /// Clean shutdown: drain every accepted append to disk, then join
    /// the thread. Idempotent.
    pub(crate) fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock().expect("commit queue poisoned");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        if let Some(h) = self
            .handle
            .lock()
            .expect("committer handle poisoned")
            .take()
        {
            let _ = h.join();
        }
    }

    /// The highest fsynced ticket — test-only visibility into group
    /// formation.
    #[cfg(test)]
    fn durable_ticket(&self) -> u64 {
        self.shared
            .state
            .lock()
            .expect("commit queue poisoned")
            .durable
    }

    /// Simulated crash: stop the committer *without* draining or a final
    /// fsync. Pending unacked appends are abandoned exactly as a power
    /// cut would abandon them. Idempotent.
    pub(crate) fn abort(&self) {
        {
            let mut st = self.shared.state.lock().expect("commit queue poisoned");
            st.abort = true;
            self.shared.work.notify_all();
            self.shared.done.notify_all();
        }
        if let Some(h) = self
            .handle
            .lock()
            .expect("committer handle poisoned")
            .take()
        {
            let _ = h.join();
        }
    }
}

/// The committer thread body.
fn run_committer(
    shared: &Shared,
    mut files: Vec<ShardFiles>,
    dims: u8,
    fsync_every: usize,
    fsync_bytes: u64,
    max_batch_delay: Duration,
    segment_bytes: u64,
) {
    // Records/bytes written to the OS since the last fsync round, and
    // the highest ticket those writes cover. With no writer waiting on
    // an ack, the fsync is deferred across drains until `fsync_every`
    // records or `fsync_bytes` bytes have accumulated (or a
    // barrier/shutdown forces it) — the group-commit amortisation, with
    // a byte bound so huge coalesced frames don't balloon a group.
    let mut unsynced_records: usize = 0;
    let mut unsynced_bytes: u64 = 0;
    let mut written_ticket: u64 = 0;
    loop {
        let (batch, prunes, high_ticket, metrics, mut want_sync);
        {
            let mut st = shared.state.lock().expect("commit queue poisoned");
            // Staleness clock for a backlog below the group bound
            // (armed only when `max_batch_delay` is non-zero).
            let mut deadline: Option<Instant> = None;
            let mut timed_flush = false;
            loop {
                if st.abort {
                    return;
                }
                if st.error.is_some() {
                    // Parked: nothing will ever become durable again.
                    // Keep waking waiters so none sleeps through the
                    // sticky error, and wait for shutdown.
                    if st.shutdown {
                        return;
                    }
                    shared.done.notify_all();
                    st.idle = true;
                    st = shared.work.wait(st).expect("commit queue poisoned");
                    st.idle = false;
                    continue;
                }
                let backlog = st.pending_records;
                let forced = st.hurry || st.shutdown || st.waiters > 0 || !st.prunes.is_empty();
                let timed = backlog > 0 && deadline.is_some_and(|d| Instant::now() >= d);
                let byte_full = fsync_bytes > 0 && st.pending_bytes >= fsync_bytes;
                if forced || backlog >= fsync_every || byte_full || timed {
                    if backlog == 0 && st.prunes.is_empty() {
                        // A barrier, ack-waiter, or clean shutdown with
                        // nothing queued: flush deferred writes with an
                        // empty batch before resting.
                        if unsynced_records > 0 {
                            break;
                        }
                        if st.shutdown {
                            return;
                        }
                        if st.hurry {
                            // Nothing unsynced: the barrier is met.
                            st.hurry = false;
                            shared.done.notify_all();
                        }
                        // An ack-waiter with no backlog and nothing
                        // unsynced is already durable; fall through to
                        // the wait.
                    } else {
                        timed_flush = timed;
                        break;
                    }
                }
                if backlog > 0 && max_batch_delay > Duration::ZERO && deadline.is_none() {
                    deadline = Some(Instant::now() + max_batch_delay);
                }
                st.idle = true;
                st = match deadline {
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            st.idle = false;
                            continue;
                        }
                        shared
                            .work
                            .wait_timeout(st, d - now)
                            .expect("commit queue poisoned")
                            .0
                    }
                    None => shared.work.wait(st).expect("commit queue poisoned"),
                };
                st.idle = false;
            }
            batch = mem::take(&mut st.pending);
            st.pending_records = 0;
            st.pending_bytes = 0;
            prunes = mem::take(&mut st.prunes);
            // Every ticket issued so far is either already durable,
            // covered by an earlier (possibly unsynced) write, or in
            // `batch` (tickets are only issued with a push).
            high_ticket = st.next_ticket - 1;
            // The staleness bound makes the whole backlog durable, not
            // just written: a timed flush syncs too.
            want_sync = st.hurry || st.shutdown || st.waiters > 0 || timed_flush;
            st.hurry = false;
            metrics = st.metrics.clone();
        }

        let mut result = write_group(&mut files, &batch, dims, segment_bytes, metrics.as_deref());
        let mut synced_to = None;
        if result.is_ok() {
            if !batch.is_empty() {
                unsynced_records += batch.iter().map(|p| p.records).sum::<usize>();
                unsynced_bytes += batch.iter().map(|p| p.frame.len() as u64).sum::<u64>();
                written_ticket = high_ticket;
            }
            if unsynced_records >= fsync_every || (fsync_bytes > 0 && unsynced_bytes >= fsync_bytes)
            {
                want_sync = true;
            }
            if want_sync && unsynced_records > 0 {
                match sync_group(&mut files, unsynced_records, metrics.as_deref()) {
                    Ok(()) => {
                        synced_to = Some(written_ticket);
                        unsynced_records = 0;
                        unsynced_bytes = 0;
                    }
                    Err(e) => result = Err(e),
                }
            }
        }
        {
            let mut st = shared.state.lock().expect("commit queue poisoned");
            match result {
                Ok(()) => {
                    if let Some(t) = synced_to {
                        st.durable = t;
                    }
                }
                Err(e) => {
                    if st.error.is_none() {
                        st.error = Some(e);
                    }
                }
            }
            shared.done.notify_all();
            if st.error.is_some() {
                continue;
            }
        }

        // The prune side of the commit/prune split: space reclamation
        // happens only after acks went out.
        if !prunes.is_empty() {
            let mut removed = 0;
            for (j, hw) in prunes {
                removed += files[j].prune(hw);
            }
            if let Some(m) = metrics.as_deref() {
                if removed > 0 {
                    m.prunes.add(removed as u64);
                }
                m.segments
                    .set(files.iter().map(ShardFiles::segment_count).sum::<usize>() as i64);
            }
        }
    }
}

/// Appends one drain's frames: all frames sorted into per-shard
/// buffers, one `write_all` per touched shard. No fsync — that is
/// [`sync_group`]'s job, possibly several drains later.
fn write_group(
    files: &mut [ShardFiles],
    batch: &[Pending],
    dims: u8,
    segment_bytes: u64,
    metrics: Option<&WalMetrics>,
) -> Result<(), WalError> {
    if batch.is_empty() {
        return Ok(());
    }
    let mut touched = BTreeSet::new();
    let mut group_bytes = 0u64;
    let mut group_records = 0u64;
    for p in batch {
        let f = &mut files[p.shard];
        f.buf.extend_from_slice(&p.frame);
        f.buf_max_seq = f.buf_max_seq.max(p.seq);
        f.buf_any = true;
        group_bytes += p.frame.len() as u64;
        group_records += p.records as u64;
        touched.insert(p.shard);
    }
    for &j in &touched {
        files[j].write(dims, segment_bytes)?;
    }
    if let Some(m) = metrics {
        m.records.add(group_records);
        m.bytes.add(group_bytes);
        m.segments
            .set(files.iter().map(ShardFiles::segment_count).sum::<usize>() as i64);
    }
    Ok(())
}

/// Fsyncs every shard with unsynced bytes — one group commit covering
/// `group_records` accumulated records.
fn sync_group(
    files: &mut [ShardFiles],
    group_records: usize,
    metrics: Option<&WalMetrics>,
) -> Result<(), WalError> {
    let fsync_start = Instant::now();
    for f in files.iter_mut() {
        f.sync()?;
    }
    if let Some(m) = metrics {
        m.fsync_ns.record_since(fsync_start);
        m.groups.inc();
        m.group_size.record(group_records as u64);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::record::encode_frame;
    use super::*;
    use sfc_core::Point;

    struct TestDir(PathBuf);

    impl TestDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "sfc-committer-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).expect("create test dir");
            TestDir(dir)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn frame(seq: u64, payload_len: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let payload = vec![0xabu8; payload_len];
        encode_frame(&mut buf, seq, &Point::new([1u32, 2]), Some(&payload));
        buf
    }

    fn spawn_one_shard(config: &WalConfig, dir: &std::path::Path) -> Committer {
        Committer::spawn(
            config,
            2,
            vec![ShardLogState {
                dir: dir.to_path_buf(),
                segments: Vec::new(),
                next_segment_id: 0,
            }],
        )
    }

    /// ROADMAP follow-on (c): crossing `fsync_bytes` must close a group
    /// early even though no writer waits and the record-count bound is
    /// nowhere near met.
    #[test]
    fn oversized_batch_forces_a_group_by_bytes() {
        let dir = TestDir::new("bytes");
        let config = WalConfig::new(&dir.0)
            .fsync_every(1_000_000)
            .fsync_bytes(1024);
        let committer = spawn_one_shard(&config, &dir.0);

        // Below the byte bound nothing forces a group: the ticket must
        // stay parked at zero (a spurious committer wakeup re-checks the
        // conditions and goes back to sleep).
        let small = frame(1, 100);
        assert!(small.len() < 512);
        committer.append(0, 1, 1, small, false).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            committer.durable_ticket(),
            0,
            "a sub-bound un-waited append must not trigger a group"
        );

        // One oversized coalesced frame blows through the byte bound;
        // the committer must sync without any waiter or barrier.
        let big = frame(2, 2048);
        committer.append(0, 2, 64, big, false).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while committer.durable_ticket() < 2 {
            assert!(
                Instant::now() < deadline,
                "byte-bound group never became durable"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        committer.shutdown();
    }

    /// With the byte bound disabled (0), the same traffic stays queued
    /// until a barrier forces it out.
    #[test]
    fn disabled_byte_bound_defers_to_the_barrier() {
        let dir = TestDir::new("nobytes");
        let config = WalConfig::new(&dir.0).fsync_every(1_000_000).fsync_bytes(0);
        let committer = spawn_one_shard(&config, &dir.0);
        committer.append(0, 1, 64, frame(1, 2048), false).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(committer.durable_ticket(), 0, "no bound, no group");
        committer.sync().unwrap();
        assert_eq!(committer.durable_ticket(), 1, "the barrier drains it");
        committer.shutdown();
    }
}
