//! Counters, gauges, and the sampling decimator.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of independent stripes per [`Counter`]. A power of two so the
/// per-thread stripe pick is a mask, not a division.
const STRIPES: usize = 16;

/// One cache line per stripe: adjacent stripes never share a line, so
/// writers on different cores don't invalidate each other.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

/// Stable per-thread stripe index: threads are numbered in creation
/// order and hash onto stripes with a mask. The same idiom as the
/// store's `ConcurrentTraffic` stripe pick, without requiring callers
/// to thread an index through.
fn stripe_of_thread() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
    }
    STRIPE.with(|s| *s)
}

/// A monotone event counter striped across padded atomics.
///
/// `inc`/`add` are wait-free (one relaxed `fetch_add` on the calling
/// thread's stripe); `value` sums the stripes and is exact for every
/// update that happened-before the read.
#[derive(Clone, Debug)]
pub struct Counter {
    stripes: Arc<[PaddedU64; STRIPES]>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter {
            stripes: Arc::new(std::array::from_fn(|_| PaddedU64::default())),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the calling thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_of_thread()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of all stripes.
    pub fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A signed instantaneous level (memtable size, run count, live records).
///
/// `set`/`add`/`sub` are single relaxed atomic operations.
#[derive(Clone, Debug)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge {
            value: Arc::new(AtomicI64::new(0)),
        }
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds to the level.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts from the level.
    #[inline]
    pub fn sub(&self, delta: i64) {
        self.value.fetch_sub(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// A wait-free 1-in-N decimator for timings too cheap to clock on every
/// call: `tick()` is one relaxed `fetch_add`, and only every `every`-th
/// call answers `true`. `every == 0` disables sampling entirely;
/// `every == 1` samples everything.
#[derive(Debug)]
pub struct Sampler {
    every: AtomicU64,
    ticks: AtomicU64,
}

impl Sampler {
    /// A sampler that passes one call in `every`.
    pub fn new(every: u64) -> Self {
        Sampler {
            every: AtomicU64::new(every),
            ticks: AtomicU64::new(0),
        }
    }

    /// Changes the sampling period (0 disables, 1 samples everything).
    pub fn set_every(&self, every: u64) {
        self.every.store(every, Ordering::Relaxed);
    }

    /// Current sampling period.
    pub fn every(&self) -> u64 {
        self.every.load(Ordering::Relaxed)
    }

    /// Advances the decimator; `true` on the sampled calls.
    #[inline]
    pub fn tick(&self) -> bool {
        let every = self.every.load(Ordering::Relaxed);
        every != 0
            && self
                .ticks
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(every)
    }

    /// Starts a clock only on sampled calls — the hot-path timing idiom:
    /// `let t = sampler.sampled_start(); ...; if let Some(t) = t { hist.record(elapsed) }`.
    #[inline]
    pub fn sampled_start(&self) -> Option<Instant> {
        if self.tick() {
            Some(Instant::now())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 40_000);
    }

    #[test]
    fn gauge_set_add_sub() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.value(), 12);
    }

    #[test]
    fn sampler_period() {
        let s = Sampler::new(4);
        let hits = (0..16).filter(|_| s.tick()).count();
        assert_eq!(hits, 4);
        s.set_every(0);
        assert!(!(0..16).any(|_| s.tick()));
        s.set_every(1);
        assert_eq!((0..5).filter(|_| s.tick()).count(), 5);
    }
}
