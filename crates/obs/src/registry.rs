//! The named metric directory and its text/JSON exporters.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metric::{Counter, Gauge};

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A directory of named metrics.
///
/// The registry's mutex guards only the *name → handle* map: it is taken
/// when a handle is first registered and when a snapshot clones the map,
/// never on the update path. Handles returned by
/// [`counter`](MetricsRegistry::counter) /
/// [`gauge`](MetricsRegistry::gauge) /
/// [`histogram`](MetricsRegistry::histogram) are cheap clones that
/// callers cache once and update wait-free thereafter.
///
/// Asking for an existing name returns the *same* underlying metric, so
/// independent components can share a metric by name. Asking for an
/// existing name with a different kind panics — that is a wiring bug.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted counter"),
        }
    }

    /// Returns (registering on first use) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted gauge"),
        }
    }

    /// Returns (registering on first use) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted histogram"),
        }
    }

    /// Captures every registered metric. The map lock is held only long
    /// enough to clone the handles; the atomics are then read without
    /// any lock, so writers are never paused.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let handles: Vec<(String, Metric)> = {
            let map = self.metrics.lock().unwrap();
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let entries = handles
            .into_iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.value()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name, value)
            })
            .collect();
        RegistrySnapshot { entries }
    }

    /// Renders the registry as aligned human-readable text.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }

    /// Renders the registry as a flat JSON object keyed by metric name.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// One captured metric value.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// A counter's summed stripes.
    Counter(u64),
    /// A gauge's level.
    Gauge(i64),
    /// A histogram capture.
    Histogram(HistogramSnapshot),
}

/// A point-in-time capture of a whole [`MetricsRegistry`], sorted by
/// metric name.
#[derive(Clone, Debug)]
pub struct RegistrySnapshot {
    /// `(name, value)` pairs in name order.
    pub entries: Vec<(String, MetricValue)>,
}

impl RegistrySnapshot {
    /// Looks up a captured counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// Looks up a captured gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    /// Looks up a captured histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Histogram(h) if n == name => Some(h),
            _ => None,
        })
    }

    /// Aligned text report: counters and gauges as plain numbers,
    /// histograms as a count + percentile line.
    pub fn render(&self) -> String {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("{name:<width$}  {c}\n"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("{name:<width$}  {g}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{name:<width$}  count={} p50={} p90={} p99={} p999={} max={}\n",
                        h.count(),
                        crate::fmt_ns(h.p50()),
                        crate::fmt_ns(h.p90()),
                        crate::fmt_ns(h.p99()),
                        crate::fmt_ns(h.p999()),
                        crate::fmt_ns(h.max()),
                    ));
                }
            }
        }
        out
    }

    /// Flat JSON object: counters/gauges as numbers, histograms as
    /// `{count, min, max, mean, p50, p90, p99, p999}` objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n  \"{}\": ", escape_json(name)));
            match value {
                MetricValue::Counter(c) => out.push_str(&c.to_string()),
                MetricValue::Gauge(g) => out.push_str(&g.to_string()),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.1}, \
                         \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}}}",
                        h.count(),
                        h.min(),
                        h.max(),
                        h.mean(),
                        h.p50(),
                        h.p90(),
                        h.p99(),
                        h.p999(),
                    ));
                }
            }
        }
        out.push_str("\n}");
        out
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("x.count");
        let b = r.counter("x.count");
        a.inc();
        b.add(2);
        assert_eq!(r.snapshot().counter("x.count"), Some(3));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_lookups_and_render() {
        let r = MetricsRegistry::new();
        r.counter("ops.count").add(7);
        r.gauge("mem.len").set(-3);
        r.histogram("ops.ns").record(1000);
        let s = r.snapshot();
        assert_eq!(s.counter("ops.count"), Some(7));
        assert_eq!(s.gauge("mem.len"), Some(-3));
        assert_eq!(s.histogram("ops.ns").unwrap().count(), 1);
        assert_eq!(s.counter("mem.len"), None, "kind-checked lookup");
        let text = r.render();
        assert!(text.contains("ops.count"));
        assert!(text.contains("p999="));
    }

    #[test]
    fn json_is_flat_and_escaped() {
        let r = MetricsRegistry::new();
        r.counter("a\"b").inc();
        r.histogram("h").record(100);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a\\\"b\": 1"));
        assert!(json.contains("\"p999\""));
    }
}
