//! # sfc-obs — engine observability: lock-free metrics, latency histograms, slow-query log
//!
//! The store is a concurrent engine; its instruments must not become the
//! bottleneck they are measuring. Everything in this crate follows one
//! discipline, borrowed from the store's `ConcurrentTraffic`: **writers
//! are wait-free, readers snapshot without stopping the world.**
//!
//! ## The pieces
//!
//! * [`MetricsRegistry`] — a named directory of [`Counter`]s, [`Gauge`]s
//!   and [`Histogram`]s. Registration (`registry.counter("x")`) takes a
//!   short mutex once per *handle*, never per *update*; the returned
//!   handles are cheap `Arc` clones that callers cache and hit directly.
//!   [`MetricsRegistry::render`] and [`MetricsRegistry::to_json`] export
//!   the whole registry as aligned text or a flat JSON object.
//! * [`Counter`] — a monotone event count, **striped** across
//!   cache-line-padded atomics (one stripe picked per thread), so
//!   concurrent writers on different cores never bounce the same line.
//!   `value()` sums the stripes; the sum is exact for all updates that
//!   happened-before the read.
//! * [`Gauge`] — a single signed atomic level (memtable size, run count).
//! * [`Histogram`] — an HDR-style log-bucketed latency histogram; see the
//!   error-bound discussion below. Reports p50/p90/p99/p999/max.
//! * [`Sampler`] — a wait-free 1-in-N decimator for timings too cheap to
//!   clock on every call (the insert hot path).
//! * [`SlowLog`] — a bounded ring buffer of the slowest operations:
//!   `observe(wall_ns, || detail)` keeps the detail closure unevaluated
//!   unless the wall time crosses the configurable threshold, so the
//!   fast path pays one atomic load.
//!
//! ## Memory model of the striped recorders
//!
//! All updates use `Ordering::Relaxed`: each stripe/bucket is an
//! independent monotone counter and no recorder ordering is promised
//! between metrics. What *is* promised: an update that happens-before a
//! snapshot (e.g. the updating thread was joined, or a lock/channel
//! established the edge) is visible in that snapshot — exactly the
//! guarantee the multi-writer stress tests assert when they join the
//! writers and then compare per-shard op counts against driver totals.
//! Snapshots taken concurrently with writers are *torn but monotone*:
//! each counter independently shows some prefix of its updates, so
//! totals can lag but never invent events.
//!
//! ## Histogram bucket layout and error bounds
//!
//! Values (latencies in ns) land in power-of-two blocks subdivided into
//! `2^5 = 32` linear sub-buckets ([`SUB_BITS`]). Values below 64 are
//! recorded exactly (blocks 0–1 have width-1 buckets); above that, a
//! bucket spanning `[lo, hi]` has `hi - lo < lo / 32`, so any reported
//! quantile `q` satisfies `v ≤ q ≤ v · (1 + 2⁻⁵)` where `v` is the exact
//! order statistic — relative error at most **3.125%**, never
//! under-reported. The full `u64` range needs only 1 920 buckets
//! (15 KiB), updated with a single `fetch_add` — no resizing, no locks.
//! `p50()`/`p90()`/`p99()`/`p999()` clamp to the exact recorded
//! min/max, so degenerate distributions report exact values.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod histogram;
mod metric;
mod registry;
mod slowlog;

pub use histogram::{Histogram, HistogramSnapshot, SUB_BITS};
pub use metric::{Counter, Gauge, Sampler};
pub use registry::{MetricValue, MetricsRegistry, RegistrySnapshot};
pub use slowlog::{SlowEntry, SlowLog};

/// Formats a nanosecond quantity with a human-readable unit (`ns`, `µs`,
/// `ms`, `s`) — shared by the text exporter and the examples.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.210s");
    }
}
