//! A bounded ring buffer of the slowest operations.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One retained slow operation.
#[derive(Clone, Debug)]
pub struct SlowEntry<T> {
    /// Admission number: the `seq`-th operation ever admitted to this
    /// log (older entries may have been evicted by the ring).
    pub seq: u64,
    /// The operation's wall time in nanoseconds.
    pub wall_ns: u64,
    /// Caller-supplied detail (e.g. a query trace).
    pub detail: T,
}

/// A slow-operation log: a ring buffer of the most recent operations
/// whose wall time crossed a configurable threshold.
///
/// The fast path — an operation *below* the threshold — costs one
/// relaxed atomic load; the `detail` closure is never evaluated and no
/// lock is touched. Slow operations take a short mutex to rotate the
/// ring. The threshold can be changed at runtime without pausing
/// writers.
#[derive(Debug)]
pub struct SlowLog<T> {
    threshold_ns: AtomicU64,
    capacity: usize,
    admitted: AtomicU64,
    entries: Mutex<VecDeque<SlowEntry<T>>>,
}

impl<T> SlowLog<T> {
    /// A log retaining the last `capacity` operations at or above
    /// `threshold`.
    pub fn new(capacity: usize, threshold: Duration) -> Self {
        SlowLog {
            threshold_ns: AtomicU64::new(u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX)),
            capacity: capacity.max(1),
            admitted: AtomicU64::new(0),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Current threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Replaces the threshold (takes effect for subsequent `observe`s).
    pub fn set_threshold(&self, threshold: Duration) {
        self.threshold_ns.store(
            u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// Offers an operation: admitted (and `detail` evaluated) only when
    /// `wall_ns` reaches the threshold. Returns whether it was admitted.
    pub fn observe(&self, wall_ns: u64, detail: impl FnOnce() -> T) -> bool {
        if wall_ns < self.threshold_ns.load(Ordering::Relaxed) {
            return false;
        }
        let seq = self.admitted.fetch_add(1, Ordering::Relaxed);
        let entry = SlowEntry {
            seq,
            wall_ns,
            detail: detail(),
        };
        let mut ring = self.entries.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
        true
    }

    /// Operations ever admitted (including those since evicted).
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the ring, returning the retained entries oldest-first.
    pub fn drain(&self) -> Vec<SlowEntry<T>> {
        self.entries.lock().unwrap().drain(..).collect()
    }
}

impl<T: Clone> SlowLog<T> {
    /// Copies out the retained entries oldest-first.
    pub fn entries(&self) -> Vec<SlowEntry<T>> {
        self.entries.lock().unwrap().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_filters_and_detail_is_lazy() {
        let log: SlowLog<String> = SlowLog::new(8, Duration::from_nanos(100));
        assert!(!log.observe(99, || unreachable!("detail must stay unevaluated")));
        assert!(log.observe(100, || "at".to_string()));
        assert!(log.observe(500, || "above".to_string()));
        assert_eq!(log.len(), 2);
        assert_eq!(log.admitted(), 2);
        let e = log.entries();
        assert_eq!(e[0].detail, "at");
        assert_eq!(e[1].wall_ns, 500);
    }

    #[test]
    fn ring_evicts_oldest() {
        let log: SlowLog<u64> = SlowLog::new(3, Duration::ZERO);
        for i in 0..5u64 {
            log.observe(i + 1, || i);
        }
        let kept: Vec<u64> = log.entries().iter().map(|e| e.detail).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(log.admitted(), 5);
        assert_eq!(log.drain().len(), 3);
        assert!(log.is_empty());
    }

    #[test]
    fn threshold_is_runtime_adjustable() {
        let log: SlowLog<()> = SlowLog::new(4, Duration::from_secs(1));
        assert!(!log.observe(10, || ()));
        log.set_threshold(Duration::ZERO);
        assert!(log.observe(10, || ()));
        assert_eq!(log.threshold_ns(), 0);
    }
}
