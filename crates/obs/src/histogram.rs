//! HDR-style log-bucketed latency histogram.
//!
//! The bucket layout is the classic power-of-two scheme: every value
//! falls in the block of its highest set bit, and each block is split
//! into `2^SUB_BITS` linear sub-buckets, so bucket width grows with the
//! value and the *relative* quantile error stays bounded by
//! `2^-SUB_BITS` (see the crate docs for the derivation). Recording is
//! one relaxed `fetch_add` on the bucket plus min/max/sum maintenance —
//! wait-free, no locks, no resizing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sub-bucket resolution: each power-of-two block is split into
/// `2^SUB_BITS` linear buckets, bounding relative quantile error by
/// `2^-SUB_BITS` (3.125%).
pub const SUB_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Blocks 0..=(64 - SUB_BITS) cover the full u64 range.
const BUCKETS: usize = (65 - SUB_BITS as usize) * SUB_BUCKETS;

/// Bucket holding `v`: values below `2^SUB_BITS` map directly (exact);
/// above, the top `SUB_BITS` mantissa bits pick the sub-bucket within
/// the value's power-of-two block.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        let m = ((v >> (e - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
        (e - SUB_BITS + 1) as usize * SUB_BUCKETS + m
    }
}

/// Smallest value landing in bucket `idx`.
fn bucket_low(idx: usize) -> u64 {
    let block = idx / SUB_BUCKETS;
    let m = (idx % SUB_BUCKETS) as u64;
    if block == 0 {
        m
    } else {
        (SUB_BUCKETS as u64 + m) << (block - 1)
    }
}

/// Largest value landing in bucket `idx`.
fn bucket_high(idx: usize) -> u64 {
    let block = idx / SUB_BUCKETS;
    if block == 0 {
        bucket_low(idx)
    } else {
        bucket_low(idx) + ((1u64 << (block - 1)) - 1)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Box<[AtomicU64]>,
    min: AtomicU64,
    max: AtomicU64,
    sum: AtomicU64,
}

/// A wait-free log-bucketed histogram handle (cheap `Arc` clone).
///
/// Writers call [`Histogram::record`] (or [`Histogram::time`] /
/// [`Histogram::record_since`] for durations); readers call
/// [`Histogram::snapshot`] at any time without pausing writers.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            core: Arc::new(HistogramCore {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one value (wait-free: one `fetch_add` on the bucket plus
    /// min/max/sum maintenance, all relaxed).
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &self.core;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records the nanoseconds elapsed since `start`.
    #[inline]
    pub fn record_since(&self, start: Instant) {
        self.record_duration(start.elapsed());
    }

    /// Times `f` and records its wall time in nanoseconds.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record_since(start);
        out
    }

    /// A point-in-time read of the buckets. Concurrent with writers the
    /// snapshot is *torn but monotone* — each bucket shows a prefix of
    /// its updates — and internally consistent: `count()` is by
    /// construction the sum of the captured buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.core;
        let mut count = 0u64;
        let buckets: Vec<(u32, u64)> = c
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                count += n;
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot {
            buckets,
            count,
            min: c.min.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// An immutable capture of a [`Histogram`]: sparse non-empty buckets
/// plus exact recorded min/max and an approximate sum.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// `(bucket index, count)` for every non-empty bucket, ascending.
    buckets: Vec<(u32, u64)>,
    count: u64,
    min: u64,
    max: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest rank, reported as the
    /// containing bucket's upper bound clamped into the exact recorded
    /// `[min, max]` — so the estimate never under-reports the true order
    /// statistic and overshoots it by at most a factor `1 + 2^-SUB_BITS`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(idx, n) in &self.buckets {
            cum += n;
            if cum >= rank {
                return bucket_high(idx as usize).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Sum of per-bucket counts — equal to [`HistogramSnapshot::count`]
    /// by construction; exposed so consistency tests can say so.
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().map(|&(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_inverts() {
        let mut prev = 0usize;
        for v in (0u64..4096).chain([u64::MAX / 3, u64::MAX]) {
            let b = bucket_index(v);
            assert!(b >= prev || v < 4096, "index must be monotone");
            prev = b.max(prev);
            assert!(bucket_low(b) <= v && v <= bucket_high(b), "v={v} b={b}");
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 64);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 63);
        assert_eq!(s.quantile(1.0), 63);
        // Below 64 every bucket has width 1, so quantiles are exact.
        assert_eq!(s.p50(), 31);
    }

    #[test]
    fn quantiles_bounded_relative_error() {
        let h = Histogram::new();
        let values: Vec<u64> = (0..1000u64).map(|i| i * i * 17 + 5).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let s = h.snapshot();
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let got = s.quantile(q);
            assert!(got >= exact, "q={q}: got {got} < exact {exact}");
            assert!(
                got <= exact + (exact >> SUB_BITS) + 1,
                "q={q}: got {got} exceeds bound for exact {exact}"
            );
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn timing_helpers_record() {
        let h = Histogram::new();
        h.time(|| std::hint::black_box(3 + 4));
        h.record_duration(Duration::from_nanos(500));
        assert_eq!(h.snapshot().count(), 2);
    }
}
