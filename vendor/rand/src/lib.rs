//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of `rand` it actually uses: [`RngCore`], the generic
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! and [`seq::SliceRandom::shuffle`]. Sampling is uniform and unbiased
//! (rejection sampling for integer ranges), but no attempt is made to be
//! bit-compatible with upstream `rand` — seeded streams differ.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A source of random `u64`s. The one low-level method every generator
/// implements.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (the stand-in for `rand::distributions::Standard`).
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                let hi = rng.next_u64() as u128;
                if <$t>::BITS > 64 {
                    let lo = rng.next_u64() as u128;
                    ((hi << 64) | lo) as $t
                } else {
                    hi as $t
                }
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// A half-open or inclusive range a value can be drawn from uniformly
/// (the stand-in for `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (sample_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                if span == 0 {
                    // Full u128 range: every value is fair game.
                    return <$t>::sample_standard(rng);
                }
                lo + (sample_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t>::sample_standard(rng) * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

macro_rules! impl_sample_range_sint {
    ($($t:ty, $u:ty);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u128;
                self.start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_sint!(i8, u8; i16, u16; i32, u32; i64, u64; i128, u128; isize, usize);

/// Uniform value in `[0, span)` by rejection sampling (unbiased).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return u128::sample_standard(rng) & (span - 1);
    }
    // Zone is the largest multiple of span that fits in u128.
    let zone = u128::MAX - (u128::MAX % span + 1) % span;
    loop {
        let v = u128::sample_standard(rng);
        if v <= zone {
            return v % span;
        }
    }
}

/// The user-facing generator interface: every [`RngCore`] gets these
/// blanket methods.
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T` (uniform over the
    /// whole type for integers, `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Built-in generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, decent-quality default generator
    /// (SplitMix64-seeded xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A default generator seeded from the system clock (the stand-in for
/// `rand::thread_rng`).
pub fn thread_rng() -> rngs::SmallRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    rngs::SmallRng::seed_from_u64(nanos)
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Slice shuffling and sampling (the subset of `rand::seq::SliceRandom`
    /// the workspace uses).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle, uniform over permutations.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_are_deterministic_and_seed_dependent() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values hit: {seen:?}");
        for _ in 0..1000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let x = rng.gen_range(5..6u32);
            assert_eq!(x, 5);
            let y = rng.gen_range(0..u128::MAX);
            assert!(y < u128::MAX);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(7);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
