//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`, [`prelude::any`], range strategies,
//! [`array::uniform2`]–[`array::uniform4`] and [`collection::vec`].
//!
//! Differences from the real crate: inputs are sampled uniformly at random
//! (no bias toward edge cases) and failures are **not shrunk** — the
//! failing input values are reported via the panic message instead. Each
//! test's stream is deterministic, derived from the test's full path, so
//! failures reproduce across runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait: something that can produce random values.

    use rand::rngs::SmallRng;
    use rand::{Rng, SampleRange, StandardSample};

    /// A source of random test inputs.
    pub trait Strategy {
        /// The type of value produced.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t>
            where
                std::ops::RangeInclusive<$t>: SampleRange<$t>,
            {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, u128, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing any value of `T` (see [`crate::prelude::any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: StandardSample + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            T::sample_standard(rng)
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;

    /// An array strategy: `N` independent draws from the inner strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut SmallRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }

    /// `[S; 2]` drawn independently.
    pub fn uniform2<S: Strategy>(s: S) -> UniformArray<S, 2> {
        UniformArray(s)
    }

    /// `[S; 3]` drawn independently.
    pub fn uniform3<S: Strategy>(s: S) -> UniformArray<S, 3> {
        UniformArray(s)
    }

    /// `[S; 4]` drawn independently.
    pub fn uniform4<S: Strategy>(s: S) -> UniformArray<S, 4> {
        UniformArray(s)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Something that can pick a vector length.
    pub trait VecLen {
        /// Draws a length.
        fn draw_len(&self, rng: &mut SmallRng) -> usize;
    }

    impl VecLen for usize {
        fn draw_len(&self, _rng: &mut SmallRng) -> usize {
            *self
        }
    }

    impl VecLen for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl VecLen for std::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// A `Vec` strategy: `len` independent draws from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector of values from `element` with length drawn from `len`.
    pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! Configuration and deterministic seeding for the test loop.

    /// Runner configuration (`cases` = number of random inputs per test).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random inputs.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic seed derived from a test's full path (FNV-1a), so each
    /// test gets its own reproducible stream.
    pub fn seed_for(test_path: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.

    pub use crate::strategy::{Any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// A strategy producing any value of `T`.
    pub fn any<T: rand::StandardSample + std::fmt::Debug>() -> Any<T> {
        Any::default()
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $cfg;
            let seed = $crate::test_runner::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
            for _case in 0..config.cases {
                $(let $arg = ($strat).sample(&mut rng);)+
                // Report the failing inputs (no shrinking in this stand-in).
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $arg.clone();)+
                    $body
                }));
                if let Err(e) = result {
                    eprintln!(
                        concat!("proptest case failed: ", stringify!($name),
                                $( "\n  ", stringify!($arg), " = {:?}", )+ ),
                        $($arg),+
                    );
                    std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

/// `assert!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5, f in 0.0f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.0..2.5).contains(&f));
        }

        #[test]
        fn arrays_and_vecs_have_requested_shape(
            a in crate::array::uniform3(0u32..8),
            v in crate::collection::vec(0u32..100, 7),
            b in any::<bool>(),
        ) {
            prop_assert_eq!(a.len(), 3);
            prop_assert!(a.iter().all(|&x| x < 8));
            prop_assert_eq!(v.len(), 7);
            let _ = b;
        }
    }

    #[test]
    fn seeds_differ_by_test_path() {
        assert_ne!(
            crate::test_runner::seed_for("a::b"),
            crate::test_runner::seed_for("a::c")
        );
    }
}
