//! Offline stand-in for `rayon` — now with real threads.
//!
//! The build environment has no crates.io access, so this crate provides
//! the parallel-iterator API surface the workspace uses
//! (`into_par_iter`, `par_iter`, `map`, `enumerate`, `filter`, `reduce`,
//! `collect`, `sum`, `for_each`, `count`, and [`join`]). Unlike the first
//! generation of this stand-in (which executed everything sequentially on
//! the calling thread), the element-wise stages now **fan out across
//! [`std::thread::scope`] worker threads**: the input is materialised,
//! split into contiguous chunks (one per worker), each chunk is processed
//! on its own thread, and the per-chunk outputs are concatenated in input
//! order — so `map`/`filter`/`collect` preserve order and `reduce` folds
//! chunk results left-to-right, exactly the determinism guarantees the
//! real rayon gives for associative operators.
//!
//! The worker count is `std::thread::available_parallelism()`, floored at
//! two so the parallel code paths are genuinely exercised (threads really
//! spawn, results really cross thread boundaries) even on single-core CI
//! containers. Single-element and empty inputs run inline. Swapping the
//! real rayon back in requires no source changes: the closure bounds
//! (`Fn + Sync`, `Send` items) match the real crate's.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Number of worker threads for chunked stages: the machine's available
/// parallelism, floored at 2 so concurrency is exercised everywhere.
fn thread_budget() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(2)
}

/// Splits `items` into at most `parts` contiguous chunks of near-equal
/// size, preserving order.
fn split_chunks<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let len = items.len();
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    // Split from the back so each split_off is O(tail).
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(parts);
    let mut cuts: Vec<usize> = Vec::with_capacity(parts);
    let mut start = 0;
    for j in 0..parts {
        cuts.push(start);
        start += base + usize::from(j < extra);
    }
    for &cut in cuts.iter().rev() {
        chunks.push(items.split_off(cut));
    }
    chunks.reverse();
    chunks
}

/// Runs `work` over each chunk of `items` on its own scoped thread,
/// returning the per-chunk results in input order.
fn run_chunked<T, R, F>(items: Vec<T>, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Vec<T>) -> R + Sync,
{
    if items.len() <= 1 {
        return if items.is_empty() {
            Vec::new()
        } else {
            vec![work(items)]
        };
    }
    let chunks = split_chunks(items, thread_budget());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(|| work(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon stand-in worker panicked"))
            .collect()
    })
}

/// A parallel iterator: a materialised item list whose element-wise
/// stages run chunked across scoped threads.
#[derive(Debug, Clone)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each element through `f` (in parallel, order preserved).
    pub fn map<B, F>(self, f: F) -> ParIter<B>
    where
        B: Send,
        F: Fn(T) -> B + Sync,
    {
        let chunks = run_chunked(self.items, |chunk| {
            chunk.into_iter().map(&f).collect::<Vec<B>>()
        });
        ParIter {
            items: chunks.into_iter().flatten().collect(),
        }
    }

    /// Pairs each element with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Keeps elements matching the predicate (in parallel, order
    /// preserved).
    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let chunks = run_chunked(self.items, |chunk| {
            chunk.into_iter().filter(|x| f(x)).collect::<Vec<T>>()
        });
        ParIter {
            items: chunks.into_iter().flatten().collect(),
        }
    }

    /// Folds all elements with `op`, starting each worker from
    /// `identity()` and combining per-chunk results left-to-right.
    ///
    /// Rayon's contract: `identity` may be invoked any number of times
    /// (once per chunk here) and `op` must be associative, which makes
    /// the chunked fold equal to the sequential one.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let chunks = run_chunked(self.items, |chunk| chunk.into_iter().fold(identity(), &op));
        chunks.into_iter().fold(identity(), &op)
    }

    /// Collects into any `FromIterator` container, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the elements.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Runs `f` on every element (in parallel).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_chunked(self.items, |chunk| chunk.into_iter().for_each(&f));
    }

    /// The number of elements.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// Conversion into a [`ParIter`] by value (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item;
    /// Wraps `self`, materialising the elements.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;

    fn into_par_iter(self) -> ParIter<T::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Conversion into a [`ParIter`] over references (rayon's
/// `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: 'a;
    /// Wraps a shared borrow of `self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Runs both closures — `b` on a scoped thread, `a` on the caller — and
/// returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon stand-in join arm panicked"))
    })
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential_fold() {
        let total = (0u64..100)
            .into_par_iter()
            .map(|x| x * x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0u64..100).map(|x| x * x).sum::<u64>());
    }

    #[test]
    fn par_iter_enumerate_collect_preserves_order() {
        let v = vec![10, 20, 30];
        let out: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn large_map_preserves_order_across_chunks() {
        let out: Vec<u64> = (0u64..10_000).into_par_iter().map(|x| x * 3).collect();
        assert_eq!(out, (0u64..10_000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn filter_preserves_order_across_chunks() {
        let out: Vec<u64> = (0u64..10_000)
            .into_par_iter()
            .filter(|x| x % 7 == 0)
            .collect();
        assert_eq!(
            out,
            (0u64..10_000).filter(|x| x % 7 == 0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reduce_of_empty_uses_identity() {
        let total = (0u64..0).into_par_iter().reduce(|| 7, |a, b| a + b);
        assert_eq!(total, 7);
    }

    #[test]
    fn map_runs_on_worker_threads() {
        // The whole point of the rewrite: element-wise stages really do
        // cross thread boundaries.
        let main_id = std::thread::current().id();
        let ids: Vec<_> = (0u64..64)
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect();
        assert!(
            ids.iter().any(|&id| id != main_id),
            "no element was processed off the calling thread"
        );
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn split_chunks_covers_everything_in_order() {
        for len in [0usize, 1, 2, 5, 17, 100] {
            for parts in [1usize, 2, 3, 8] {
                let items: Vec<usize> = (0..len).collect();
                let chunks = super::split_chunks(items, parts);
                let flat: Vec<usize> = chunks.iter().flatten().copied().collect();
                assert_eq!(
                    flat,
                    (0..len).collect::<Vec<_>>(),
                    "len={len} parts={parts}"
                );
                assert!(chunks.len() <= parts.max(1));
            }
        }
    }
}
