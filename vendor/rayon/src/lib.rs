//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the parallel-iterator API surface the workspace uses
//! (`into_par_iter`, `par_iter`, `map`, `enumerate`, `reduce`, `collect`,
//! `sum`, `for_each`, and [`join`]) with **sequential** execution. The
//! semantics match rayon for deterministic pipelines: `reduce` folds in
//! order, `collect` preserves input order. Swapping the real rayon back in
//! requires no source changes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A "parallel" iterator: a thin sequential wrapper with rayon's method
/// names.
#[derive(Debug, Clone)]
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Maps each element through `f`.
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    /// Pairs each element with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter {
            inner: self.inner.enumerate(),
        }
    }

    /// Keeps elements matching the predicate.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter {
            inner: self.inner.filter(f),
        }
    }

    /// Folds all elements with `op`, starting from `identity()`.
    ///
    /// Rayon's contract: `identity` may be invoked any number of times and
    /// `op` must be associative; a sequential left fold satisfies both.
    pub fn reduce<ID, OP>(mut self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        let first = self.inner.next().unwrap_or_else(&identity);
        self.inner.fold(first, op)
    }

    /// Collects into any `FromIterator` container, preserving order.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    /// Sums the elements.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }

    /// Runs `f` on every element.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.inner.for_each(f)
    }

    /// The number of elements.
    pub fn count(self) -> usize {
        self.inner.count()
    }
}

/// Conversion into a [`ParIter`] by value (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The wrapped sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;
    /// Wraps `self`.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    type Item = T::Item;

    fn into_par_iter(self) -> ParIter<T::IntoIter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// Conversion into a [`ParIter`] over references (rayon's
/// `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The wrapped sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type (a reference).
    type Item: 'a;
    /// Wraps a shared borrow of `self`.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<std::slice::Iter<'a, T>> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<std::slice::Iter<'a, T>> {
        ParIter { inner: self.iter() }
    }
}

/// Runs both closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential_fold() {
        let total = (0u64..100)
            .into_par_iter()
            .map(|x| x * x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0u64..100).map(|x| x * x).sum::<u64>());
    }

    #[test]
    fn par_iter_enumerate_collect_preserves_order() {
        let v = vec![10, 20, 30];
        let out: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn reduce_of_empty_uses_identity() {
        let total = (0u64..0).into_par_iter().reduce(|| 7, |a, b| a + b);
        assert_eq!(total, 7);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
