//! Offline stand-in for `rand_chacha`.
//!
//! Provides a deterministic, seedable generator under the [`ChaCha8Rng`]
//! name so seeded test code compiles and runs unchanged. The stream is
//! **not** the real ChaCha8 keystream (no crates.io access to the
//! original); it is xoshiro256** with SplitMix64 seeding, which is more
//! than adequate for the statistical assertions in this workspace's tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (API-compatible subset of the real
/// `ChaCha8Rng`: `seed_from_u64` + `RngCore`).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    inner: SmallRng,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Alias matching the real crate's strongest variant.
pub type ChaCha20Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
