//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the benchmark-harness API subset the workspace's `benches/` use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple but honest: per benchmark it warms
//! up, then collects `sample_size` wall-clock samples (each a batch of
//! iterations sized to ≳1 ms) and reports the median together with min/max,
//! in criterion's familiar `time: [low median high]` shape. There is no
//! statistical regression analysis and no HTML report.
//!
//! In addition to the printed lines, every finished benchmark is recorded
//! in a process-global list that a custom `main` can drain with
//! [`take_records`] — the hook the workspace's bench harness uses to emit
//! machine-readable JSON (`BENCH_store.json`) for CI trend tracking. The
//! real criterion serves the same need through `--message-format=json` /
//! `cargo-criterion`; this is the offline stand-in's minimal equivalent.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work performed by one iteration of a benchmark, declared with
/// [`BenchmarkGroup::throughput`] so the harness can report a rate
/// (`thrpt:` line) alongside the time — the same shape as criterion's
/// `Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Each iteration processes this many bytes (reported in GB/s).
    Bytes(u64),
    /// Each iteration processes this many elements (reported in Melem/s).
    Elements(u64),
}

/// One finished benchmark: its full name and the per-iteration
/// nanosecond statistics printed in the `time: [low median high]` line.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// `group/function` name as printed.
    pub name: String,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample — the number regressions are judged against.
    pub median_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// 50th-percentile sample by nearest rank (the median again, kept
    /// as an explicit field so JSON consumers get a uniform p50/p95/p99
    /// triple).
    pub p50_ns: f64,
    /// 95th-percentile sample by nearest rank.
    pub p95_ns: f64,
    /// 99th-percentile sample by nearest rank (equals the max until the
    /// sample count reaches 100).
    pub p99_ns: f64,
    /// Declared per-iteration work, when the group set one.
    pub throughput: Option<Throughput>,
}

impl BenchRecord {
    /// Median throughput in gigabytes per second, when the benchmark
    /// declared [`Throughput::Bytes`].
    pub fn gb_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Bytes(bytes)) => Some(bytes as f64 / self.median_ns),
            _ => None,
        }
    }
}

/// The `q`-quantile of ascending-sorted samples by nearest rank.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Every benchmark finished so far, in execution order.
static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Drains and returns all benchmark records collected so far. Call from a
/// custom `main` after the `criterion_group!` functions have run to
/// post-process results (e.g. write a JSON report).
pub fn take_records() -> Vec<BenchRecord> {
    std::mem::take(&mut RECORDS.lock().expect("record list poisoned"))
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Runs the timed closure and collects samples.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, storing per-iteration nanoseconds for each sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: grow the batch until it runs ≳1 ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 30 {
                break;
            }
            batch *= 2;
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn fmt_throughput(t: Throughput, ns: f64) -> String {
    match t {
        // bytes / ns == GB/s.
        Throughput::Bytes(bytes) => format!("{:.4} GB/s", bytes as f64 / ns),
        Throughput::Elements(n) => format!("{:.4} Melem/s", n as f64 * 1e3 / ns),
    }
}

fn run_one(
    full_name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{full_name:<50} (no samples)");
        return;
    }
    b.samples_ns.sort_by(|a, c| a.total_cmp(c));
    let lo = b.samples_ns[0];
    let hi = *b.samples_ns.last().unwrap();
    let median = b.samples_ns[b.samples_ns.len() / 2];
    println!(
        "{:<50} time: [{} {} {}]",
        full_name,
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
    if let Some(t) = throughput {
        // Like criterion: slowest rate first (from the slowest sample).
        println!(
            "{:<50} thrpt: [{} {} {}]",
            "",
            fmt_throughput(t, hi),
            fmt_throughput(t, median),
            fmt_throughput(t, lo)
        );
    }
    RECORDS
        .lock()
        .expect("record list poisoned")
        .push(BenchRecord {
            name: full_name.to_string(),
            min_ns: lo,
            median_ns: median,
            max_ns: hi,
            p50_ns: quantile_sorted(&b.samples_ns, 0.50),
            p95_ns: quantile_sorted(&b.samples_ns, 0.95),
            p99_ns: quantile_sorted(&b.samples_ns, 0.99),
            throughput,
        });
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of wall-clock samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        run_one(&id.into_id(), self.sample_size, None, &mut f);
    }
}

/// A named group of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(3);
        self
    }

    /// Declares the work one iteration of the following benchmarks
    /// performs; each subsequently finished benchmark reports a `thrpt:`
    /// rate line and carries the figure in its [`BenchRecord`].
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.criterion.sample_size, self.throughput, &mut f);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.id);
        run_one(
            &full,
            self.criterion.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        // Smoke test: runs without panicking and prints a line.
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("z").id, "z");
    }

    #[test]
    fn throughput_is_recorded_and_converted() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("thrpt");
        g.throughput(Throughput::Bytes(1_000_000));
        g.bench_function("bytes", |b| b.iter(|| black_box([0u8; 64])));
        g.finish();
        let records = take_records();
        let rec = records
            .iter()
            .find(|r| r.name == "thrpt/bytes")
            .expect("benchmark recorded");
        assert_eq!(rec.throughput, Some(Throughput::Bytes(1_000_000)));
        let gbps = rec.gb_per_sec().expect("bytes throughput declared");
        assert!(gbps > 0.0 && gbps.is_finite());
        assert!((gbps - 1_000_000.0 / rec.median_ns).abs() < 1e-12);
    }

    #[test]
    fn records_are_collected_and_drainable() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("recorded_noop", |b| b.iter(|| black_box(2 + 2)));
        let records = take_records();
        let rec = records
            .iter()
            .find(|r| r.name == "recorded_noop")
            .expect("benchmark recorded");
        assert!(rec.min_ns <= rec.median_ns && rec.median_ns <= rec.max_ns);
        assert!(rec.median_ns > 0.0);
        assert!(rec.min_ns <= rec.p50_ns);
        assert!(rec.p50_ns <= rec.p95_ns && rec.p95_ns <= rec.p99_ns);
        assert!(rec.p99_ns <= rec.max_ns);
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile_sorted(&sorted, 0.50), 50.0);
        assert_eq!(quantile_sorted(&sorted, 0.95), 95.0);
        assert_eq!(quantile_sorted(&sorted, 0.99), 99.0);
        let tiny = [7.0, 9.0, 11.0];
        assert_eq!(quantile_sorted(&tiny, 0.50), 9.0);
        // With 3 samples the tail percentiles collapse to the max.
        assert_eq!(quantile_sorted(&tiny, 0.99), 11.0);
    }
}
