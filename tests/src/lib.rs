//! Host crate for the workspace integration tests (see `tests/tests/`).
//!
//! The library itself only provides shared helpers for the integration
//! tests.

use rand::SeedableRng;

/// A deterministic test RNG.
pub fn test_rng(seed: u64) -> rand_chacha::ChaCha8Rng {
    rand_chacha::ChaCha8Rng::seed_from_u64(seed)
}
