//! Differential model testing of the locality-aware B+tree memtable.
//!
//! Every property drives the B+tree and a plain
//! `BTreeMap<CurveIndex, V>` through the same operation interleavings —
//! insert/update/delete, range and reverse iteration, owned cursors,
//! seq-windowed `retain` drains (the shard flush protocol), and
//! `from_sorted` bulk loads — and requires identical observable state at
//! every checkpoint. Key streams come in two flavours, curve-local
//! random walks (the hint-cache fast path) and uniform-random keys (the
//! root-descent slow path), so both code paths face every interleaving.
//!
//! The multi-writer stress rerun at the bottom replays the PR 5
//! publish-before-drain regression (readers must never see a flush gap
//! or time travel) against the new memtable with more writers and a
//! different capacity than the original `concurrency.rs` test.

use proptest::collection;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sfc_core::{CurveIndex, Grid, Point, ZCurve};
use sfc_index::BoxRegion;
use sfc_store::memtable::bptree::BPlusTreeMap;
use sfc_store::memtable::SfcMemtable;
use sfc_store::ShardedSfcStore;
use std::collections::BTreeMap;

/// Draws the next key of a stream: a few-cell random walk when `local`
/// (consecutive keys land in the same leaf, exercising the hint cache),
/// uniform over the universe otherwise (every operation descends from
/// the root).
fn next_key(rng: &mut SmallRng, cur: &mut CurveIndex, local: bool, universe: u128) -> CurveIndex {
    if local {
        let step = rng.gen_range(0..7u32) as u128;
        *cur = if rng.gen_range(0..2u32) == 0 {
            (*cur + step) % universe
        } else {
            cur.saturating_sub(step)
        };
        *cur
    } else {
        rng.gen_range(0..universe)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Insert/update/delete/get/range/reverse interleavings agree with
    /// the model exactly, across leaf capacities and key localities.
    #[test]
    fn bptree_matches_btreemap(
        seed in any::<u64>(),
        leaf_cap in 4usize..80,
        local in any::<bool>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let universe = 600u128;
        let mut tree = BPlusTreeMap::with_leaf_capacity(leaf_cap);
        let mut model: BTreeMap<CurveIndex, u64> = BTreeMap::new();
        let mut cur = universe / 2;
        for step in 0..1_500u64 {
            let k = next_key(&mut rng, &mut cur, local, universe);
            match rng.gen_range(0..12u32) {
                0..=6 => prop_assert_eq!(tree.insert(k, step), model.insert(k, step)),
                7..=8 => prop_assert_eq!(tree.remove(&k), model.remove(&k)),
                9 => prop_assert_eq!(tree.get(&k), model.get(&k)),
                10 => {
                    let hi = k + rng.gen_range(0..48u32) as u128;
                    let got: Vec<_> = tree.range_iter(k, hi).map(|(k, &v)| (k, v)).collect();
                    let want: Vec<_> = model.range(k..=hi).map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(got, want);
                }
                _ => {
                    let got: Vec<_> = tree.iter_rev_below(k).map(|(k, &v)| (k, v)).collect();
                    let want: Vec<_> =
                        model.range(..k).rev().map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        let got: Vec<_> = tree.iter().map(|(k, &v)| (k, v)).collect();
        let want: Vec<_> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
        let drained: Vec<_> = tree.into_iter().collect();
        prop_assert_eq!(drained, want);
    }

    /// The shard flush drain: entries carry sequence numbers, and
    /// `retain(seq >= high_water)` after interleaved writes must keep
    /// exactly what the model keeps — including keys overwritten
    /// mid-"flush" whose newer seq must survive the drain.
    #[test]
    fn seq_windowed_drain_matches_model(
        seed in any::<u64>(),
        leaf_cap in 4usize..64,
        local in any::<bool>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let universe = 400u128;
        // The engine-facing wrapper, exactly as `epoch.rs` uses it.
        let mut tree: SfcMemtable<(u64, u64)> = SfcMemtable::with_leaf_capacity(leaf_cap);
        let mut model: BTreeMap<CurveIndex, (u64, u64)> = BTreeMap::new();
        let mut cur = universe / 2;
        let mut seq = 0u64;
        for _round in 0..12 {
            for _ in 0..rng.gen_range(10..150usize) {
                let k = next_key(&mut rng, &mut cur, local, universe);
                tree.insert(k, (k as u64, seq));
                model.insert(k, (k as u64, seq));
                seq += 1;
            }
            let high_water = seq;
            // "Publish" happened; concurrent writers race the drain.
            for _ in 0..rng.gen_range(0..40usize) {
                let k = next_key(&mut rng, &mut cur, local, universe);
                tree.insert(k, (k as u64, seq));
                model.insert(k, (k as u64, seq));
                seq += 1;
            }
            tree.retain(|_, &(_, s)| s >= high_water);
            model.retain(|_, &mut (_, s)| s >= high_water);
            let got: Vec<_> = tree.iter().map(|(k, &v)| (k, v)).collect();
            let want: Vec<_> = model.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(got, want);
            prop_assert_eq!(tree.len(), model.len());
        }
    }

    /// Owned cursors stay coherent across arbitrary mutation: `value()`
    /// always equals the model's current value at the cursor key, and
    /// `next()`/`prev()` step to exactly the model's neighbouring keys —
    /// whether or not the cursor's own key was removed, split away, or
    /// drained since the cursor was taken.
    #[test]
    fn cursors_track_model_across_mutation(
        seed in any::<u64>(),
        leaf_cap in 4usize..48,
        local in any::<bool>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let universe = 300u128;
        let mut tree: SfcMemtable<u64> = SfcMemtable::with_leaf_capacity(leaf_cap);
        let mut model: BTreeMap<CurveIndex, u64> = BTreeMap::new();
        let mut cur = universe / 2;
        let mut cursors = Vec::new();
        for step in 0..800u64 {
            let k = next_key(&mut rng, &mut cur, local, universe);
            match rng.gen_range(0..10u32) {
                0..=5 => {
                    tree.insert(k, step);
                    model.insert(k, step);
                }
                6..=7 => {
                    tree.remove(&k);
                    model.remove(&k);
                }
                8 => {
                    if let Some(c) = tree.cursor_seek(k) {
                        cursors.push(c);
                    }
                }
                _ => {
                    // A partial drain invalidates many positions at once.
                    let cutoff = rng.gen_range(0..universe);
                    tree.retain(|key, _| key < cutoff);
                    model.retain(|&key, _| key < cutoff);
                }
            }
            for c in &cursors {
                let key = c.key();
                prop_assert_eq!(c.value(&tree), model.get(&key), "cursor value at {}", key);
                let got_next = c.next(&tree).map(|n| n.key());
                let want_next = model.range(key + 1..).next().map(|(&k, _)| k);
                prop_assert_eq!(got_next, want_next, "cursor next from {}", key);
                let got_prev = c.prev(&tree).map(|p| p.key());
                let want_prev = model.range(..key).next_back().map(|(&k, _)| k);
                prop_assert_eq!(got_prev, want_prev, "cursor prev from {}", key);
            }
            if cursors.len() > 8 {
                cursors.remove(0);
            }
        }
    }

    /// `from_sorted` bulk load produces the same tree as one-by-one
    /// insertion: same contents, same iteration, same drain, and it
    /// keeps absorbing writes correctly afterwards.
    #[test]
    fn bulk_load_matches_incremental(
        keys in collection::vec(0u128..2_000, 0..600usize),
        leaf_cap in 4usize..80,
    ) {
        let mut sorted: Vec<CurveIndex> = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let entries: Vec<(CurveIndex, u64)> =
            sorted.iter().map(|&k| (k, k as u64)).collect();
        let bulk =
            BPlusTreeMap::from_sorted_with_capacity(leaf_cap, entries.iter().copied());
        let mut incremental = BPlusTreeMap::with_leaf_capacity(leaf_cap);
        for &k in &keys {
            incremental.insert(k, k as u64);
        }
        prop_assert_eq!(bulk.len(), incremental.len());
        let a: Vec<_> = bulk.iter().map(|(k, &v)| (k, v)).collect();
        let b: Vec<_> = incremental.iter().map(|(k, &v)| (k, v)).collect();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a, entries.clone());
        // The bulk-loaded tree is a first-class citizen for mutation.
        let mut bulk = bulk;
        let mut model: BTreeMap<CurveIndex, u64> = entries.iter().copied().collect();
        for &k in keys.iter().rev() {
            prop_assert_eq!(bulk.remove(&k), model.remove(&k));
        }
        prop_assert!(bulk.is_empty());
    }
}

/// The PR 5 publish-before-drain regression, rerun on the B+tree
/// memtable with four writers (two per shard) instead of one: a reader
/// hammering a hot cell through `get` and `query_box` must never find
/// the cell missing (flush gap) or see its value decrease (time
/// travel), while flushes every few writes and periodic compactions
/// exercise the cursor-walk drain under contention.
#[test]
fn multi_writer_flush_gaps_and_time_travel_stress() {
    let grid = Grid::<2>::new(4).unwrap();
    let z = ZCurve::over(grid);
    let store = ShardedSfcStore::with_memtable_capacity(z, 2, 3);
    let hot_a = Point::new([3, 3]);
    let hot_b = Point::new([12, 12]); // routes to the other shard
    store.insert(hot_a, 0u32);
    store.insert(hot_b, 0u32);
    const WRITES: u32 = 2_000;

    std::thread::scope(|scope| {
        let store = &store;
        let mut writers = Vec::new();
        // One writer per shard owns the hot cell (so its observed value
        // is monotone — two independent counters racing on the same cell
        // would legitimately let last-write-wins go backwards); the
        // second writer contends on the same shard's locks and flushes
        // through filler cells only.
        for (hot, filler) in [
            (Some(hot_a), Point::new([5, 2])),
            (None, Point::new([2, 5])),
            (Some(hot_b), Point::new([13, 10])),
            (None, Point::new([10, 13])),
        ] {
            writers.push(scope.spawn(move || {
                for v in 1..=WRITES {
                    if let Some(hot) = hot {
                        store.insert(hot, v);
                    }
                    store.insert(filler, v);
                    if v % 512 == 0 {
                        store.compact();
                    }
                }
            }));
        }
        let ball = BoxRegion::new(Point::new([2, 2]), Point::new([13, 13]));
        let mut last_get = [0u32; 2];
        let mut last_box = [0u32; 2];
        while writers.iter().any(|w| !w.is_finished()) {
            for (i, hot) in [hot_a, hot_b].into_iter().enumerate() {
                let got = store
                    .get(hot)
                    .expect("hot cell vanished: flush gap observed by get()");
                assert!(
                    got >= last_get[i],
                    "get() went backwards: {got} < {}",
                    last_get[i]
                );
                last_get[i] = got;
            }
            let (hits, _) = store.query_box(&ball);
            for (i, hot) in [hot_a, hot_b].into_iter().enumerate() {
                let hit = hits
                    .iter()
                    .find(|e| e.point == hot)
                    .expect("hot cell vanished: flush gap observed by query_box()");
                assert!(
                    hit.payload >= last_box[i],
                    "query_box went backwards: {} < {}",
                    hit.payload,
                    last_box[i]
                );
                last_box[i] = hit.payload;
            }
        }
        for w in writers {
            w.join().expect("writer panicked");
        }
    });
    assert_eq!(store.get(hot_a), Some(WRITES));
    assert_eq!(store.get(hot_b), Some(WRITES));
}
