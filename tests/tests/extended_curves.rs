//! Integration coverage for the extended 2-D curves (spiral, diagonal):
//! they must compose with every substrate exactly like the analytic five.

use sfc_core::{Grid, Point, SpaceFillingCurve};
use sfc_index::{BoxRegion, SfcIndex};
use sfc_integration::test_rng;
use sfc_metrics::{bounds, nn_stretch};
use sfc_partition::{partition_greedy, quality, WeightedGrid, Workload};

fn extended_curves(k: u32) -> Vec<sfc_core::BoxedCurve<2>> {
    vec![
        Box::new(sfc_core::SpiralCurve::new(k).unwrap()),
        Box::new(sfc_core::DiagonalCurve::new(k).unwrap()),
    ]
}

#[test]
fn extended_curves_obey_theorem_1() {
    for k in 1..=5u32 {
        let bound = bounds::thm1_nn_stretch_lower_bound(k, 2);
        for curve in extended_curves(k) {
            let s = nn_stretch::summarize(&curve);
            assert!(
                s.d_avg() >= bound - 1e-9,
                "{} k={k}: {} < {bound}",
                curve.name(),
                s.d_avg()
            );
            assert!(s.d_max() >= s.d_avg() - 1e-9);
        }
    }
}

#[test]
fn extended_curves_sa_prime_is_universal() {
    // Lemma 2 holds for the new curves too, of course.
    for curve in extended_curves(2) {
        assert_eq!(
            sfc_metrics::all_pairs::sa_prime_sum(&curve),
            bounds::lemma2_sa_prime(16),
            "{}",
            curve.name()
        );
    }
}

#[test]
fn extended_curves_serve_box_and_knn_queries() {
    let grid = Grid::<2>::new(4).unwrap();
    let mut rng = test_rng(123);
    let records: Vec<(Point<2>, usize)> =
        (0..200).map(|i| (grid.random_cell(&mut rng), i)).collect();
    for curve in extended_curves(4) {
        let name = curve.name();
        let index = SfcIndex::build(curve, records.clone());
        let region = BoxRegion::new(Point::new([2, 3]), Point::new([9, 11]));
        let (hits, stats) = index.query_box_intervals(&region);
        let (full, _) = index.query_box_full_scan(&region);
        assert_eq!(hits.len(), full.len(), "{name}");
        assert_eq!(stats.overscan(), 1.0, "{name}");
        let q = Point::new([7, 7]);
        let (got, _) = index.knn(q, 4, 6);
        let want = index.knn_linear(q, 4);
        let gd: Vec<u64> = got.iter().map(|e| q.euclidean_sq(&e.point)).collect();
        let wd: Vec<u64> = want.iter().map(|e| q.euclidean_sq(&e.point)).collect();
        assert_eq!(gd, wd, "{name}");
    }
}

#[test]
fn extended_curves_partition_cleanly() {
    let grid = Grid::<2>::new(4).unwrap();
    let mut rng = test_rng(7);
    let weights = WeightedGrid::generate(
        grid,
        Workload::GaussianClusters {
            count: 3,
            sigma: 2.0,
        },
        &mut rng,
    );
    for curve in extended_curves(4) {
        let part = partition_greedy(&curve, &weights, 6);
        let q = quality::evaluate(&curve, &weights, &part);
        assert!(q.imbalance >= 1.0 - 1e-12, "{}", curve.name());
        assert!(q.edge_cut > 0, "{}", curve.name());
        assert_eq!(part.parts(), 6);
    }
}

#[test]
fn spiral_produces_ring_shaped_partitions() {
    // A distinctive structural property: with uniform weights and p equal
    // to the ring count, spiral parts follow the onion rings — the
    // outermost part is exactly the outer ring's cells.
    let grid = Grid::<2>::new(3).unwrap(); // 8×8, rings 0..4
    let mut rng = test_rng(9);
    let weights = WeightedGrid::generate(grid, Workload::Uniform, &mut rng);
    let spiral = sfc_core::SpiralCurve::new(3).unwrap();
    let part = partition_greedy(&spiral, &weights, 2);
    // Part 0 = first 32 cells of the spiral = outer ring (28 cells) + the
    // first 4 of ring 1.
    let outer_ring_cells = grid
        .cells()
        .filter(|c| grid.is_boundary(c))
        .collect::<Vec<_>>();
    assert_eq!(outer_ring_cells.len(), 28);
    for cell in outer_ring_cells {
        assert_eq!(part.part_of(spiral.index_of(cell)), 0, "cell {cell}");
    }
}
