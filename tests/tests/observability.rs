//! Observability-layer integration tests.
//!
//! Three angles on the `sfc-obs` + store instrumentation stack:
//!
//! * **Quantile accuracy** — proptests replay adversarial latency
//!   distributions (all-equal, bimodal, power-law) through the
//!   log-bucketed histogram and compare every reported quantile against
//!   the exact nearest-rank order statistic of the sorted samples. The
//!   histogram may never under-report, and may overshoot by at most one
//!   sub-bucket width (`2^-SUB_BITS` relative).
//! * **Wait-free recording** — writer threads hammer one shared
//!   histogram while a reader snapshots mid-flight; every snapshot must
//!   be internally consistent and the final one must account for every
//!   sample.
//! * **Engine accounting under concurrency** — a multi-writer run
//!   against an instrumented `ShardedSfcStore` whose per-shard op
//!   counters must sum to the driver's ground-truth totals, with the
//!   registry's JSON export validated structurally and numerically.

use proptest::prelude::*;
use rand::Rng;
use sfc_core::{Grid, Point, ZCurve};
use sfc_index::BoxRegion;
use sfc_integration::test_rng;
use sfc_obs::{Histogram, SUB_BITS};
use sfc_store::ShardedSfcStore;

/// Exact nearest-rank quantile of a sorted sample set — the reference
/// the histogram is judged against (same rank convention as
/// `HistogramSnapshot::quantile`).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Records `values` and checks min/max/count exactly and every standard
/// quantile against the never-under-report / bounded-overshoot contract.
fn assert_quantiles_track_reference(values: &[u64]) {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let s = h.snapshot();
    assert_eq!(s.count(), values.len() as u64);
    assert_eq!(s.bucket_total(), s.count());
    assert_eq!(s.min(), sorted[0]);
    assert_eq!(s.max(), *sorted.last().unwrap());
    for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
        let exact = exact_quantile(&sorted, q);
        let got = s.quantile(q);
        assert!(got >= exact, "q={q}: reported {got} < exact {exact}");
        assert!(
            got <= exact + (exact >> SUB_BITS) + 1,
            "q={q}: reported {got} overshoots exact {exact} by more than a sub-bucket"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Degenerate distribution: every sample identical. Every quantile
    /// must collapse to that one value (the bucket-high estimate is
    /// clamped to the exact recorded max).
    #[test]
    fn all_equal_samples_have_exact_quantiles(value in 0u64..10_000_000, len in 1usize..400) {
        assert_quantiles_track_reference(&vec![value; len]);
    }

    /// Bimodal latency — a fast mode and a slow mode orders of magnitude
    /// apart, the classic shape that breaks mean-based reporting.
    #[test]
    fn bimodal_samples_keep_quantile_bounds(seed in any::<u64>(), len in 2usize..400) {
        let mut rng = test_rng(seed);
        let fast = rng.gen_range(1u64..2_000);
        let slow = rng.gen_range(1_000_000u64..50_000_000);
        let values: Vec<u64> = (0..len)
            .map(|_| {
                if rng.gen_range(0..10u32) < 9 {
                    fast + rng.gen_range(0..100u64)
                } else {
                    slow + rng.gen_range(0..10_000u64)
                }
            })
            .collect();
        assert_quantiles_track_reference(&values);
    }

    /// Power-law tail: most samples tiny, a few enormous — exercises
    /// buckets across many power-of-two blocks in one histogram.
    #[test]
    fn power_law_samples_keep_quantile_bounds(seed in any::<u64>(), len in 1usize..400) {
        let mut rng = test_rng(seed);
        let values: Vec<u64> = (0..len)
            .map(|_| {
                let magnitude = rng.gen_range(0u32..40);
                (1u64 << magnitude) + rng.gen_range(0..=(1u64 << magnitude))
            })
            .collect();
        assert_quantiles_track_reference(&values);
    }
}

/// Writer threads record disjoint known sample sets into one shared
/// histogram while a reader snapshots continuously. Mid-flight snapshots
/// must be internally consistent ("torn but monotone"); the final
/// snapshot must account for every sample with exact min/max and
/// monotone quantiles.
#[test]
fn concurrent_recorders_lose_no_samples() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 20_000;
    let h = Histogram::new();
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let h = h.clone();
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    // Spread across several power-of-two blocks, with a
                    // per-writer offset so every thread touches the same
                    // buckets as its peers (maximum contention).
                    h.record((i % 1_021) * 97 + w);
                }
            });
        }
        let h = h.clone();
        scope.spawn(move || {
            let mut last_count = 0u64;
            for _ in 0..200 {
                let s = h.snapshot();
                assert_eq!(
                    s.bucket_total(),
                    s.count(),
                    "snapshot buckets must sum to its count"
                );
                assert!(
                    s.count() >= last_count,
                    "sample count went backwards between snapshots"
                );
                last_count = s.count();
                if s.count() > 0 {
                    assert!(s.min() <= s.max());
                    let (p50, p90, p99, p999) = (s.p50(), s.p90(), s.p99(), s.p999());
                    assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
                    assert!(p999 <= s.max() + (s.max() >> SUB_BITS) + 1);
                }
            }
        });
    });
    let s = h.snapshot();
    assert_eq!(s.count(), WRITERS * PER_WRITER, "samples were lost");
    assert_eq!(s.bucket_total(), s.count());
    assert_eq!(s.min(), 0, "writer 0's first sample is 0");
    assert_eq!(s.max(), 1_020 * 97 + WRITERS - 1);
}

/// Minimal structural JSON validator: objects, strings, and numbers —
/// the full grammar the registry export uses. Returns the rest of the
/// input after one value, or panics with a position.
fn skip_json_value(s: &[u8], mut i: usize) -> usize {
    let ws = |s: &[u8], mut i: usize| {
        while i < s.len() && (s[i] as char).is_whitespace() {
            i += 1;
        }
        i
    };
    i = ws(s, i);
    assert!(i < s.len(), "truncated JSON at byte {i}");
    match s[i] {
        b'{' => {
            i += 1;
            i = ws(s, i);
            if s[i] == b'}' {
                return i + 1;
            }
            loop {
                i = ws(s, i);
                assert_eq!(s[i], b'"', "object key must be a string at byte {i}");
                i = skip_json_value(s, i);
                i = ws(s, i);
                assert_eq!(s[i], b':', "missing ':' at byte {i}");
                i = skip_json_value(s, i + 1);
                i = ws(s, i);
                match s[i] {
                    b',' => i += 1,
                    b'}' => return i + 1,
                    c => panic!("unexpected {:?} in object at byte {i}", c as char),
                }
            }
        }
        b'"' => {
            i += 1;
            while s[i] != b'"' {
                i += if s[i] == b'\\' { 2 } else { 1 };
            }
            i + 1
        }
        b'-' | b'0'..=b'9' => {
            i += 1;
            while i < s.len() && matches!(s[i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                i += 1;
            }
            i
        }
        c => panic!("unexpected {:?} at byte {i}", c as char),
    }
}

/// Pulls a named integer field out of the flat registry JSON.
fn json_counter(json: &str, name: &str) -> u64 {
    let key = format!("\"{name}\": ");
    let at = json.find(&key).unwrap_or_else(|| panic!("{name} missing"));
    json[at + key.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter field must be an integer")
}

/// Multi-writer stress against an instrumented sharded store: the
/// per-shard op counters in the registry must sum to the driver's
/// ground-truth totals, and the JSON export must be structurally valid
/// with the same numbers in it.
#[test]
fn shard_counters_sum_to_driver_totals_under_concurrency() {
    const WRITERS: usize = 4;
    const INSERTS_PER_WRITER: u64 = 3_000;
    const DELETES_PER_WRITER: u64 = 500;
    const GETS_PER_WRITER: u64 = 800;
    const QUERIES: u64 = 32;

    let grid = Grid::<2>::new(6).unwrap(); // 64×64
    let z = ZCurve::over(grid);
    let mut store = ShardedSfcStore::with_memtable_capacity(z, WRITERS, 64);
    let metrics = store.enable_metrics();
    std::thread::scope(|scope| {
        for w in 0..WRITERS as u64 {
            let store = &store;
            scope.spawn(move || {
                let mut rng = test_rng(0xB0B + w);
                for i in 0..INSERTS_PER_WRITER {
                    store.insert(grid.random_cell(&mut rng), w * 1_000_000 + i);
                }
                for _ in 0..DELETES_PER_WRITER {
                    store.delete(grid.random_cell(&mut rng));
                }
                for _ in 0..GETS_PER_WRITER {
                    std::hint::black_box(store.get(grid.random_cell(&mut rng)));
                }
            });
        }
        let store = &store;
        scope.spawn(move || {
            let b = BoxRegion::new(Point::new([8, 8]), Point::new([40, 35]));
            for _ in 0..QUERIES {
                std::hint::black_box(store.query_box(&b).0.len());
            }
        });
    });

    let snap = metrics.registry().snapshot();
    let shard_sum = |metric: &str| -> u64 {
        (0..WRITERS)
            .map(|j| snap.counter(&format!("shard{j}.{metric}")).unwrap())
            .sum()
    };
    let writers = WRITERS as u64;
    assert_eq!(shard_sum("insert.count"), writers * INSERTS_PER_WRITER);
    assert_eq!(shard_sum("delete.count"), writers * DELETES_PER_WRITER);
    assert_eq!(shard_sum("get.count"), writers * GETS_PER_WRITER);
    assert!(shard_sum("flush.count") > 0, "64-cap memtables must flush");
    assert!(shard_sum("epoch_publish.count") >= shard_sum("flush.count"));
    assert_eq!(snap.counter("engine.query.count"), Some(QUERIES));
    // Gauges settle to the quiesced store's true shape.
    let live_sum: i64 = (0..WRITERS)
        .map(|j| snap.gauge(&format!("shard{j}.live")).unwrap())
        .sum();
    assert_eq!(live_sum as usize, store.len());

    // The JSON export parses and carries the same numbers.
    let json = snap.to_json();
    let end = skip_json_value(json.as_bytes(), 0);
    assert_eq!(json[end..].trim(), "", "trailing garbage after JSON value");
    let json_insert_sum: u64 = (0..WRITERS)
        .map(|j| json_counter(&json, &format!("shard{j}.insert.count")))
        .sum();
    assert_eq!(json_insert_sum, writers * INSERTS_PER_WRITER);
    assert_eq!(
        json_counter(&json, "engine.query.count"),
        QUERIES,
        "JSON export disagrees with snapshot accessor"
    );
}
