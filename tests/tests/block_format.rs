//! Round-trip properties of the compressed columnar block format.
//!
//! Every test packs a sorted key/point/liveness column set through
//! `BlockStore::pack` and checks that decoding — slot accessors, the
//! bulk `decode_into` kernel, and the cursor — reproduces the input
//! byte-for-byte. The generators deliberately steer into the format's
//! corner cases: all-equal keys (width 0), deltas past 64 bits (the raw
//! fallback), ragged tail blocks, and all-tombstone blocks.

use proptest::prelude::*;
use sfc_core::{CurveIndex, Point};
use sfc_index::{BlockCursor, BlockStore, DecodedBlock, BLOCK_SLOTS};

/// Packs the columns and asserts every decode path reproduces them.
fn assert_round_trip(keys: &[CurveIndex], points: &[Point<2>], live: &[bool]) {
    let store = BlockStore::pack(keys, points, |i| live[i]);
    assert_eq!(store.len(), keys.len());
    assert_eq!(
        store.live_len(),
        live.iter().filter(|&&l| l).count(),
        "live bitmap must count exactly the live slots"
    );

    // Slot accessors (decode one field at a time).
    for i in 0..keys.len() {
        assert_eq!(store.key_at(i), keys[i], "key_at({i})");
        assert_eq!(store.point_at(i), points[i], "point_at({i})");
        assert_eq!(store.is_live_slot(i), live[i], "is_live_slot({i})");
    }

    // Bulk kernel decode, block by block.
    let mut dec = Box::<DecodedBlock<2>>::default();
    for block in 0..store.blocks() {
        store.decode_into(block, &mut dec);
        for i in store.block_range(block) {
            let j = i % BLOCK_SLOTS;
            assert_eq!(dec.keys[j], keys[i], "decoded key at slot {i}");
            assert_eq!(dec.point(j), points[i], "decoded point at slot {i}");
        }
    }

    // Cursor decode (the scan-path entry point).
    let mut cur = BlockCursor::new(&store);
    for i in 0..keys.len() {
        assert_eq!(cur.key(i), keys[i]);
        assert_eq!(cur.point(i), points[i]);
    }

    // Rank into the dense payload column is the live-slot prefix count.
    let mut rank = 0usize;
    for (i, &is_live) in live.iter().enumerate() {
        if is_live {
            assert_eq!(store.rank(i), rank, "rank({i})");
            rank += 1;
        }
    }

    // lower_bound agrees with a linear scan on every stored key.
    for (i, &k) in keys.iter().enumerate() {
        let lb = store.lower_bound(k);
        assert!(lb <= i && store.key_at(lb) == k, "lower_bound under-seeks");
        if lb > 0 {
            assert!(store.key_at(lb - 1) < k, "lower_bound over-seeks");
        }
    }
}

/// Generates sorted-key columns with adversarial delta shapes: each step
/// is either zero (duplicate pressure → narrow widths), small, medium,
/// or astronomically large (forces the raw-width fallback).
fn columns(seed: u64, len: usize) -> (Vec<CurveIndex>, Vec<Point<2>>, Vec<bool>) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut key: CurveIndex = 0;
    let mut keys = Vec::with_capacity(len);
    let mut points = Vec::with_capacity(len);
    let mut live = Vec::with_capacity(len);
    for _ in 0..len {
        let step: u128 = match rng.gen_range(0u8..4) {
            0 => 0,
            1 => rng.gen_range(1u128..16),
            2 => rng.gen_range(1u128..(1 << 20)),
            _ => rng.gen_range(u128::from(u64::MAX)..(u128::from(u64::MAX) << 40)),
        };
        key = key.saturating_add(step);
        keys.push(key);
        points.push(Point::new([rng.gen::<u32>(), rng.gen::<u32>()]));
        live.push(rng.gen::<bool>());
    }
    (keys, points, live)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// pack → unpack is the identity on every decode path, across block
    /// boundaries, ragged tails, and raw-width escapes.
    #[test]
    fn pack_unpack_round_trips(seed in any::<u64>(), len in 0usize..200) {
        let (keys, points, live) = columns(seed, len);
        assert_round_trip(&keys, &points, &live);
    }

    /// Per-block metadata used for pruning must stay conservative: the
    /// AABB bounds every stored point and the fence is the block minimum.
    #[test]
    fn block_summaries_bound_their_slots(seed in any::<u64>(), len in 0usize..200) {
        let (keys, points, live) = columns(seed, len);
        let store = BlockStore::pack(&keys, &points, |i| live[i]);
        for block in 0..store.blocks() {
            let (lo, hi) = store.aabb(block);
            for i in store.block_range(block) {
                prop_assert!(store.fence(block) <= keys[i]);
                for d in 0..2 {
                    prop_assert!(lo.coords()[d] <= points[i].coords()[d]);
                    prop_assert!(points[i].coords()[d] <= hi.coords()[d]);
                }
            }
        }
    }
}

#[test]
fn all_equal_keys_pack_at_width_zero() {
    // 3 blocks of identical keys and identical points: the key and
    // coordinate columns need no words at all, only block metadata.
    let n = 3 * BLOCK_SLOTS;
    let keys = vec![42u128; n];
    let points = vec![Point::new([7, 9]); n];
    let live = vec![true; n];
    assert_round_trip(&keys, &points, &live);
    let store = BlockStore::pack(&keys, &points, |_| true);
    let metadata_only = BlockStore::<2>::pack(&[], &[], |_| true).heap_bytes();
    assert!(
        store.heap_bytes() < metadata_only + n * 2,
        "all-equal columns should cost ~0 bits per slot beyond metadata"
    );
}

#[test]
fn max_delta_keys_take_the_raw_escape() {
    // First and last key of one block span the full u128 range: the
    // delta exceeds 64 bits, so the block must fall back to raw words
    // and still round-trip exactly.
    let mut keys = vec![0u128; BLOCK_SLOTS];
    keys[BLOCK_SLOTS - 1] = u128::MAX;
    let points: Vec<Point<2>> = (0..BLOCK_SLOTS as u32)
        .map(|i| Point::new([i, i]))
        .collect();
    let live = vec![true; BLOCK_SLOTS];
    assert_round_trip(&keys, &points, &live);
}

#[test]
fn one_slot_tail_block_round_trips() {
    // One full block plus a single-slot tail: the tail is zero-padded to
    // 64 logical slots but only its real slot is addressable.
    let n = BLOCK_SLOTS + 1;
    let keys: Vec<CurveIndex> = (0..n as u128).map(|i| i * 3).collect();
    let points: Vec<Point<2>> = (0..n as u32).map(|i| Point::new([i, 1000 - i])).collect();
    let live: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    assert_round_trip(&keys, &points, &live);
    let store = BlockStore::pack(&keys, &points, |i| live[i]);
    assert_eq!(store.blocks(), 2);
    assert_eq!(store.block_range(1), BLOCK_SLOTS..n);
}

#[test]
fn all_tombstone_blocks_are_flagged_dead() {
    let n = 2 * BLOCK_SLOTS;
    let keys: Vec<CurveIndex> = (0..n as u128).collect();
    let points: Vec<Point<2>> = (0..n as u32).map(|i| Point::new([i, i])).collect();
    // First block entirely tombstoned, second entirely live.
    let live: Vec<bool> = (0..n).map(|i| i >= BLOCK_SLOTS).collect();
    assert_round_trip(&keys, &points, &live);
    let store = BlockStore::pack(&keys, &points, |i| live[i]);
    assert!(store.is_all_dead(0));
    assert!(!store.is_all_dead(1));
    assert_eq!(store.live(0), 0);
    assert_eq!(store.live(1), BLOCK_SLOTS as u32);
}

#[test]
fn empty_store_has_no_blocks() {
    let store = BlockStore::<2>::pack(&[], &[], |_| true);
    assert!(store.is_empty());
    assert_eq!(store.blocks(), 0);
    assert_eq!(store.lower_bound(0), 0);
    assert!(store.bounds().is_none());
}
