//! Concurrency stress tests for the `&self` sharded store engine:
//! parallel writers on disjoint curve ranges, snapshot readers sampling
//! mid-flight state, live readers racing the flush protocol, and a
//! stop-the-world rebalance under fire. Every snapshot must be internally
//! consistent, no reader may ever observe a flush gap or time travel, and
//! the final state must equal a sequential replay of the same per-thread
//! op streams.
//!
//! CI runs this suite twice: in the debug test sweep and again under
//! `--release`, where the tighter timings shake out races the debug
//! interleavings miss.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::Rng;
use sfc_core::{CurveIndex, Grid, Point, SpaceFillingCurve, ZCurve};
use sfc_index::BoxRegion;
use sfc_integration::test_rng;
use sfc_store::{
    MaintenanceConfig, RateLimit, SfcStore, ShardedSfcStore, ShardedSnapshot, StoreEntry,
};

const WRITER_THREADS: usize = 4;
const OPS_PER_WRITER: usize = 2_500;

/// One writer's deterministic op stream, confined to its own quadrant of
/// the grid (disjoint curve ranges ⇒ no cross-thread conflicts to order:
/// the final state is independent of thread interleaving).
fn writer_ops(grid: Grid<2>, writer: u32) -> Vec<(Point<2>, Option<u32>)> {
    let mut rng = test_rng(0xC0DE + u64::from(writer));
    let half = (grid.side() / 2) as u32;
    let (ox, oy) = [(0, 0), (half, 0), (0, half), (half, half)][writer as usize];
    (0..OPS_PER_WRITER as u32)
        .map(|i| {
            let p = Point::new([ox + rng.gen_range(0..half), oy + rng.gen_range(0..half)]);
            if i % 6 == 5 {
                (p, None) // delete
            } else {
                (p, Some(writer * 1_000_000 + i))
            }
        })
        .collect()
}

fn flat(v: impl IntoIterator<Item = StoreEntry<2, u32>>) -> Vec<(CurveIndex, Point<2>, u32)> {
    v.into_iter().map(|e| (e.key, e.point, e.payload)).collect()
}

/// Asserts one frozen snapshot is internally consistent: strictly
/// increasing unique keys, `len()` equal to the iterated count, point
/// gets agreeing with iteration, and box queries (both strategies, both
/// sequential and parallel) equal to the filtered iteration.
fn assert_snapshot_consistent(snap: &ShardedSnapshot<2, u32, ZCurve<2>>, grid: Grid<2>) {
    let entries: Vec<(CurveIndex, Point<2>, u32)> =
        snap.iter().map(|e| (e.key, e.point, *e.payload)).collect();
    assert_eq!(entries.len(), snap.len(), "len vs iterated count");
    for w in entries.windows(2) {
        assert!(w[0].0 < w[1].0, "snapshot keys not strictly increasing");
    }
    for &(key, p, v) in entries.iter().step_by(37) {
        assert_eq!(snap.get(p), Some(&v), "get({p}) vs iter at key {key}");
    }
    let side = (grid.side() - 1) as u32;
    for (lo, hi) in [((2, 2), (13, 11)), ((0, 0), (side, side))] {
        let b = BoxRegion::new(Point::new([lo.0, lo.1]), Point::new([hi.0, hi.1]));
        let want: Vec<_> = entries
            .iter()
            .filter(|&&(_, p, _)| b.contains(&p))
            .copied()
            .collect();
        let got: Vec<_> = snap
            .query_box_intervals(&b)
            .0
            .iter()
            .map(|e| (e.key, e.point, *e.payload))
            .collect();
        assert_eq!(got, want, "snapshot box query vs filtered iteration");
        let got_bigmin: Vec<_> = snap
            .query_box_bigmin(&b)
            .0
            .iter()
            .map(|e| (e.key, e.point, *e.payload))
            .collect();
        assert_eq!(got_bigmin, want, "snapshot bigmin vs filtered iteration");
        let got_par: Vec<_> = snap
            .query_box_par(&b)
            .0
            .iter()
            .map(|e| (e.key, e.point, *e.payload))
            .collect();
        assert_eq!(
            got_par, want,
            "snapshot parallel query vs filtered iteration"
        );
    }
}

/// The headline stress test: `WRITER_THREADS` writers on disjoint curve
/// ranges, snapshot readers asserting internal consistency the whole
/// time, one stop-the-world rebalance in the middle, and a final
/// sequential-replay equivalence check.
#[test]
fn concurrent_writers_with_snapshot_readers() {
    let grid = Grid::<2>::new(5).unwrap(); // 32×32
    let z = ZCurve::over(grid);
    let store = ShardedSfcStore::with_memtable_capacity(z, WRITER_THREADS, 32);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let writers: Vec<_> = (0..WRITER_THREADS as u32)
            .map(|writer| {
                let store = &store;
                let ops = writer_ops(grid, writer);
                scope.spawn(move || {
                    for (i, (p, op)) in ops.into_iter().enumerate() {
                        match op {
                            Some(v) => {
                                store.insert(p, v);
                            }
                            None => {
                                store.delete(p);
                            }
                        }
                        // Exercise maintenance under fire from the
                        // writers themselves: compaction swaps epochs
                        // while the other writers and all readers keep
                        // going.
                        if i % 1_000 == 999 {
                            store.compact();
                        }
                    }
                })
            })
            .collect();
        // Snapshot readers: every frozen view must be consistent, no
        // matter when it lands relative to flushes and compactions.
        for _ in 0..2 {
            let store = &store;
            let done = &done;
            scope.spawn(move || {
                let mut rounds = 0u32;
                while !done.load(Ordering::Relaxed) || rounds < 3 {
                    let snap = store.snapshot();
                    assert_snapshot_consistent(&snap, grid);
                    rounds += 1;
                }
            });
        }
        // A live reader: lock-free query results must always be
        // well-formed (sorted unique keys inside the box) even while the
        // state is in motion. Sequential and parallel dispatch are each
        // checked for well-formedness only — the two calls take separate
        // captures, so with writers active their *contents* may
        // legitimately differ by in-flight writes (byte-equality of par
        // vs seq is asserted on quiesced stores and snapshots elsewhere).
        {
            let store = &store;
            let done = &done;
            scope.spawn(move || {
                let b = BoxRegion::new(Point::new([4, 4]), Point::new([27, 23]));
                while !done.load(Ordering::Relaxed) {
                    for hits in [store.query_box(&b).0, store.query_box_par(&b).0] {
                        for w in hits.windows(2) {
                            assert!(w[0].key < w[1].key, "live query keys out of order");
                        }
                        assert!(hits.iter().all(|e| b.contains(&e.point)));
                    }
                }
            });
        }
        // One stop-the-world rebalance while everyone is running.
        {
            let store = &store;
            scope.spawn(move || {
                store.rebalance(1e-9);
            });
        }
        // Wait for every writer, then release the readers (each runs at
        // least a few more rounds against the settled store).
        for handle in writers {
            handle.join().expect("writer panicked");
        }
        done.store(true, Ordering::Relaxed);
    });

    // Sequential replay: same op streams, one single-threaded store and
    // one model map. Disjoint ranges make the result interleaving-free.
    let mut replay = SfcStore::with_memtable_capacity(z, 32);
    let mut model = std::collections::BTreeMap::new();
    for writer in 0..WRITER_THREADS as u32 {
        for (p, op) in writer_ops(grid, writer) {
            let key = z.index_of(p);
            match op {
                Some(v) => {
                    replay.insert(p, v);
                    model.insert(key, (p, v));
                }
                None => {
                    replay.delete(p);
                    model.remove(&key);
                }
            }
        }
    }
    assert_eq!(store.len(), replay.len(), "live count vs sequential replay");
    let got = flat(store.iter());
    let want: Vec<_> = replay
        .iter()
        .map(|e| (e.key, e.point, *e.payload))
        .collect();
    assert_eq!(got, want, "final state vs sequential replay");
    let model_flat: Vec<_> = model.iter().map(|(&k, &(p, v))| (k, p, v)).collect();
    assert_eq!(got, model_flat, "final state vs model");
    // And one last frozen view of the settled store.
    assert_snapshot_consistent(&store.snapshot(), grid);
}

/// Targeted regression for the publish-before-drain flush protocol: a
/// writer hammers one cell with strictly increasing values (forcing
/// frequent flushes with a capacity-2 memtable) while a reader polls
/// `get` and a covering box query. The reader must never observe the cell
/// vanish (the flush-gap bug a drain-then-publish order would cause) and
/// never observe values go backwards.
#[test]
fn readers_never_see_flush_gaps_or_time_travel() {
    let grid = Grid::<2>::new(4).unwrap();
    let z = ZCurve::over(grid);
    let store = ShardedSfcStore::with_memtable_capacity(z, 2, 2);
    let hot = Point::new([3, 3]);
    let filler = Point::new([5, 2]); // same shard: keeps the memtable filling
    store.insert(hot, 0u32);
    const WRITES: u32 = 4_000;

    std::thread::scope(|scope| {
        let store = &store;
        let writer = scope.spawn(move || {
            for v in 1..=WRITES {
                store.insert(hot, v);
                store.insert(filler, v);
                if v % 512 == 0 {
                    store.compact();
                }
            }
        });
        let ball = BoxRegion::new(Point::new([2, 2]), Point::new([6, 6]));
        let mut last_get = 0u32;
        let mut last_box = 0u32;
        while !writer.is_finished() {
            let got = store
                .get(hot)
                .expect("hot cell vanished: flush gap observed by get()");
            assert!(got >= last_get, "get() went backwards: {got} < {last_get}");
            last_get = got;
            let (hits, _) = store.query_box(&ball);
            let hit = hits
                .iter()
                .find(|e| e.point == hot)
                .expect("hot cell vanished: flush gap observed by query_box()");
            assert!(
                hit.payload >= last_box,
                "query_box went backwards: {} < {last_box}",
                hit.payload
            );
            last_box = hit.payload;
        }
        writer.join().expect("writer panicked");
    });
    assert_eq!(store.get(hot), Some(WRITES));
}

/// Concurrent writers plus a continuous snapshot taker while shards
/// rebalance repeatedly: boundaries move under fire, yet every snapshot
/// stays consistent and the final state still equals the replay.
#[test]
fn rebalance_under_concurrent_write_load() {
    let grid = Grid::<2>::new(5).unwrap();
    let z = ZCurve::over(grid);
    let store = ShardedSfcStore::with_memtable_capacity(z, 4, 16);
    std::thread::scope(|scope| {
        for writer in 0..4u32 {
            let store = &store;
            let ops = writer_ops(grid, writer);
            scope.spawn(move || {
                for (p, op) in ops {
                    match op {
                        Some(v) => {
                            store.insert(p, v);
                        }
                        None => {
                            store.delete(p);
                        }
                    }
                }
            });
        }
        let store = &store;
        scope.spawn(move || {
            for _ in 0..5 {
                store.rebalance(1e-9);
                assert_snapshot_consistent(&store.snapshot(), grid);
            }
        });
    });
    let mut replay = SfcStore::with_memtable_capacity(z, 16);
    for writer in 0..4u32 {
        for (p, op) in writer_ops(grid, writer) {
            match op {
                Some(v) => {
                    replay.insert(p, v);
                }
                None => {
                    replay.delete(p);
                }
            }
        }
    }
    let want: Vec<_> = replay
        .iter()
        .map(|e| (e.key, e.point, *e.payload))
        .collect();
    assert_eq!(flat(store.iter()), want, "rebalance under load lost writes");
}

/// With the background maintenance thread owning flushes and compactions
/// (rate-limited by its token bucket), writers must never stall behind a
/// major merge: every individual insert completes well under a generous
/// bound, even while the maintenance thread is continuously flushing and
/// compacting the same shards. Without the maintenance offload, a writer
/// landing on a full memtable would pay the whole flush+merge inline.
#[test]
fn writers_never_stall_behind_maintenance_merges() {
    let grid = Grid::<2>::new(5).unwrap();
    let z = ZCurve::over(grid);
    let store = Arc::new(ShardedSfcStore::with_memtable_capacity(
        z,
        WRITER_THREADS,
        64,
    ));
    // Aggressive maintenance: tick constantly, compact as soon as two
    // runs exist, and throttle the merges hard so they are *slow* — the
    // point is that writer latency stays decoupled from merge duration.
    store.start_maintenance(MaintenanceConfig {
        interval: Duration::from_micros(200),
        compact_at_runs: 2,
        rate_limit: Some(RateLimit {
            bytes_per_sec: 4 << 20,
            burst_bytes: 64 << 10,
            quantum: Duration::from_micros(500),
        }),
    });

    let worst = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITER_THREADS as u32)
            .map(|writer| {
                let store = Arc::clone(&store);
                let ops = writer_ops(grid, writer);
                scope.spawn(move || {
                    let mut worst = Duration::ZERO;
                    for (p, op) in ops {
                        let t = Instant::now();
                        match op {
                            Some(v) => {
                                store.insert(p, v);
                            }
                            None => {
                                store.delete(p);
                            }
                        }
                        worst = worst.max(t.elapsed());
                    }
                    worst
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("writer panicked"))
            .max()
            .unwrap()
    });
    store.stop_maintenance();

    // Generous even for a loaded CI box, yet far below what an inline
    // rate-limited merge (hundreds of KiB at 4 MiB/s ≈ tens to hundreds
    // of ms, repeatedly) would cost a writer.
    assert!(
        worst < Duration::from_millis(500),
        "a writer stalled {worst:?} behind background maintenance"
    );

    // Maintenance must not have lost or duplicated anything.
    let mut replay = SfcStore::with_memtable_capacity(z, 64);
    for writer in 0..WRITER_THREADS as u32 {
        for (p, op) in writer_ops(grid, writer) {
            match op {
                Some(v) => {
                    replay.insert(p, v);
                }
                None => {
                    replay.delete(p);
                }
            }
        }
    }
    let want: Vec<_> = replay
        .iter()
        .map(|e| (e.key, e.point, *e.payload))
        .collect();
    assert_eq!(flat(store.iter()), want, "maintenance lost writes");
}
