//! Batch-encoding equivalence: `index_of_batch` / `point_of_batch` must be
//! extensionally identical to the scalar `index_of` / `point_of` for every
//! curve family, at every tested `k` and dimension — including the
//! table-driven Hilbert and LUT Morton kernels, which take entirely
//! different code paths from their scalar counterparts. Also pins the
//! radix-sort bulk load of `SfcIndex` to the seed's stable
//! `sort_by_key` semantics.

use proptest::prelude::*;
use rand::Rng;
use sfc_core::{
    CurveIndex, DiagonalCurve, Grid, PermutationCurve, Point, SpaceFillingCurve, SpiralCurve,
};
use sfc_index::SfcIndex;
use sfc_integration::test_rng;

/// Asserts batch ≡ scalar plus batch roundtrip on a set of points.
fn assert_batch_equivalence<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    points: &[Point<D>],
) {
    let mut keys = Vec::new();
    curve.index_of_batch(points, &mut keys);
    assert_eq!(keys.len(), points.len());
    for (p, &key) in points.iter().zip(&keys) {
        assert_eq!(
            key,
            curve.index_of(*p),
            "{} batch≠scalar at {p}",
            curve.name()
        );
    }
    let mut back = Vec::new();
    curve.point_of_batch(&keys, &mut back);
    assert_eq!(back, points, "{} batch decode roundtrip", curve.name());
}

fn random_points<const D: usize>(grid: Grid<D>, count: usize, seed: u64) -> Vec<Point<D>> {
    let mut rng = test_rng(seed);
    (0..count).map(|_| grid.random_cell(&mut rng)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generic curve family, several k, d = 2 — including k values
    /// that exercise the Hilbert byte kernel's partial-byte lead-in
    /// (k % 4 ∈ {0, 1, 2, 3}) and the deep k = 16 path.
    #[test]
    fn batch_matches_scalar_d2(seed in any::<u64>(), kind_idx in 0usize..5) {
        for k in [1u32, 2, 3, 5, 8, 10, 16] {
            let kind = sfc_core::CurveKind::ALL[kind_idx];
            let curve = kind.build::<2>(k).unwrap();
            let points = random_points(curve.grid(), 257, seed);
            assert_batch_equivalence(&curve, &points);
        }
    }

    /// d = 3: exercises the 6-bit Hilbert wide groups and the odd-level
    /// lead-in (k % 2 = 1), plus the Morton dilate3 LUT.
    #[test]
    fn batch_matches_scalar_d3(seed in any::<u64>(), kind_idx in 0usize..5) {
        for k in [1u32, 2, 5, 8, 13] {
            let kind = sfc_core::CurveKind::ALL[kind_idx];
            let curve = kind.build::<3>(k).unwrap();
            let points = random_points(curve.grid(), 257, seed);
            assert_batch_equivalence(&curve, &points);
        }
    }

    /// Dimensions with no specialised kernel fall back to the generic
    /// default, which must still agree with scalar calls.
    #[test]
    fn batch_matches_scalar_high_d(seed in any::<u64>()) {
        for kind in sfc_core::CurveKind::ALL {
            let c4 = kind.build::<4>(5).unwrap();
            assert_batch_equivalence(&c4, &random_points(c4.grid(), 100, seed));
            let c1 = kind.build::<1>(12).unwrap();
            assert_batch_equivalence(&c1, &random_points(c1.grid(), 100, seed));
        }
    }

    /// The 2-D-only families (spiral, diagonal) and table-driven
    /// permutation curves use the trait's default batch implementation.
    #[test]
    fn batch_matches_scalar_special_2d(seed in any::<u64>(), k in 1u32..6) {
        let spiral = SpiralCurve::new(k).unwrap();
        assert_batch_equivalence(&spiral, &random_points(spiral.grid(), 128, seed));
        let diagonal = DiagonalCurve::new(k).unwrap();
        assert_batch_equivalence(&diagonal, &random_points(diagonal.grid(), 128, seed));
        let grid = Grid::<2>::new(k.min(4)).unwrap();
        let mut rng = test_rng(seed ^ 1);
        let perm = PermutationCurve::random(grid, &mut rng).unwrap();
        assert_batch_equivalence(&perm, &random_points(grid, 128, seed));
    }

    /// Exhaustive (every cell) equivalence on small grids, where the
    /// Hilbert table path can be cross-checked against the full bijection.
    #[test]
    fn batch_matches_scalar_exhaustive_small(k in 1u32..5) {
        for kind in sfc_core::CurveKind::ALL {
            let c2 = kind.build::<2>(k).unwrap();
            let cells: Vec<Point<2>> = c2.grid().cells().collect();
            assert_batch_equivalence(&c2, &cells);
            let c3 = kind.build::<3>(k.min(3)).unwrap();
            let cells: Vec<Point<3>> = c3.grid().cells().collect();
            assert_batch_equivalence(&c3, &cells);
        }
    }

    /// The radix bulk load produces exactly the order of the seed's stable
    /// `sort_by_key` build — duplicates keep input order.
    #[test]
    fn radix_build_matches_stable_comparison_sort(seed in any::<u64>(), kind_idx in 0usize..5) {
        let kind = sfc_core::CurveKind::ALL[kind_idx];
        let curve = kind.build::<2>(4).unwrap();
        let grid = curve.grid();
        let mut rng = test_rng(seed);
        // ~1/3 duplicated cells so stability is actually exercised.
        let mut records: Vec<(Point<2>, usize)> =
            (0..300).map(|i| (grid.random_cell(&mut rng), i)).collect();
        for i in 0..100 {
            let j = rng.gen_range(0..records.len());
            records.push((records[j].0, 1_000 + i));
        }
        let mut expected: Vec<(CurveIndex, usize)> = records
            .iter()
            .map(|&(p, payload)| (curve.index_of(p), payload))
            .collect();
        expected.sort_by_key(|&(key, _)| key); // std stable sort = seed behaviour
        let index = SfcIndex::build(&curve, records);
        let got: Vec<(CurveIndex, usize)> =
            index.entries().map(|e| (e.key, *e.payload)).collect();
        prop_assert_eq!(got, expected);
    }
}
