//! Consistency checks between crates that implement the same quantity
//! through different code paths.

use sfc_core::{CurveKind, Grid, Point, SpaceFillingCurve, ZCurve};
use sfc_index::{BoxRegion, SfcIndex};
use sfc_integration::test_rng;
use sfc_metrics::clustering;

/// `BoxRegion::curve_intervals` (sfc-index) and
/// `clustering::clusters_for_box` (sfc-metrics) are two independent
/// implementations of the Moon-et-al cluster count; they must agree for
/// every curve and every square box.
#[test]
fn interval_count_equals_cluster_count() {
    for kind in CurveKind::ALL {
        let curve = kind.build::<2>(3).unwrap();
        for size in [1u64, 2, 3, 5] {
            for x in 0..(8 - size as u32) {
                for y in 0..(8 - size as u32) {
                    let corner = Point::new([x, y]);
                    let hi = Point::new([x + size as u32 - 1, y + size as u32 - 1]);
                    let region = BoxRegion::new(corner, hi);
                    let intervals = region.curve_intervals(&curve);
                    let clusters = clustering::clusters_for_box(&curve, corner, size);
                    assert_eq!(
                        intervals.len() as u64,
                        clusters,
                        "{kind} box at {corner} size {size}"
                    );
                }
            }
        }
    }
}

/// The seeks of an interval-decomposed box query equal the cluster count:
/// the index layer pays exactly the clustering metric in seeks.
#[test]
fn index_seeks_equal_clustering_metric() {
    let grid = Grid::<2>::new(4).unwrap();
    let mut rng = test_rng(5);
    // One record in every cell so the scan structure is fully visible.
    let records: Vec<(Point<2>, u64)> = grid
        .cells()
        .map(|c| (c, u64::from(c.coord(0)) * 100 + u64::from(c.coord(1))))
        .collect();
    for kind in CurveKind::ALL {
        let curve = kind.build::<2>(4).unwrap();
        let index = SfcIndex::build(&curve, records.clone());
        for _ in 0..20 {
            let corner = Point::new([
                rand::Rng::gen_range(&mut rng, 0..12u32),
                rand::Rng::gen_range(&mut rng, 0..12u32),
            ]);
            let size = rand::Rng::gen_range(&mut rng, 1..5u64);
            let hi = Point::new([
                corner.coord(0) + size as u32 - 1,
                corner.coord(1) + size as u32 - 1,
            ]);
            let region = BoxRegion::new(corner, hi);
            let (hits, stats) = index.query_box_intervals(&region);
            let clusters = clustering::clusters_for_box(&curve, corner, size);
            assert_eq!(stats.seeks, clusters, "{kind}");
            // Full occupancy: every box cell is a hit.
            assert_eq!(hits.len() as u128, region.volume(), "{kind}");
        }
    }
}

/// `ZCurve::nn_edge_distance` (sfc-core closed form) agrees with the
/// measured Λ machinery (sfc-metrics) and with brute-force curve
/// distances — three crates, one number.
#[test]
fn z_edge_distance_three_ways() {
    let z = ZCurve::<3>::new(3).unwrap();
    for axis in 0..3 {
        let brute: u128 = z
            .grid()
            .nn_edges()
            .filter(|&(_, _, a)| a == axis)
            .map(|(p, q, _)| z.curve_distance(p, q))
            .sum();
        let lambda = sfc_metrics::lambda::lambda_measured(&z, axis);
        let closed = sfc_metrics::lambda::lambda_closed_form(3, 3, axis + 1);
        assert_eq!(brute, lambda);
        assert_eq!(brute, closed);
    }
}

/// Partition edge cuts through the partition crate match a brute-force
/// recount through core primitives.
#[test]
fn partition_edge_cut_brute_force() {
    use sfc_partition::{partition_greedy, quality, WeightedGrid, Workload};
    let grid = Grid::<2>::new(3).unwrap();
    let mut rng = test_rng(9);
    let weights = WeightedGrid::generate(
        grid,
        Workload::GaussianClusters {
            count: 2,
            sigma: 1.5,
        },
        &mut rng,
    );
    for kind in CurveKind::ALL {
        let curve = kind.build::<2>(3).unwrap();
        let part = partition_greedy(&curve, &weights, 5);
        let q = quality::evaluate(&curve, &weights, &part);
        let mut brute = 0u64;
        for (a, b, _) in grid.nn_edges() {
            if part.part_of(curve.index_of(a)) != part.part_of(curve.index_of(b)) {
                brute += 1;
            }
        }
        assert_eq!(q.edge_cut, brute, "{kind}");
    }
}

/// Quantised bodies at cell centers reproduce cell-level curve keys: the
/// nbody quantisation and the core curves agree.
#[test]
fn body_quantisation_matches_cell_keys() {
    use sfc_nbody::body::{body_key, Body};
    let grid = Grid::<2>::new(4).unwrap();
    let z = ZCurve::<2>::over(grid);
    for cell in grid.cells() {
        let center = [
            (f64::from(cell.coord(0)) + 0.5) / 16.0,
            (f64::from(cell.coord(1)) + 0.5) / 16.0,
        ];
        let body = Body::at_rest(center, 1.0);
        assert_eq!(body_key(&z, &body), z.index_of(cell), "cell {cell}");
    }
}
