//! Property tests for the partitioner: optimality of min-bottleneck
//! against brute force, and structural invariants of greedy cuts.

use proptest::prelude::*;
use sfc_core::{Grid, SimpleCurve};
use sfc_partition::partitioner::partition_min_bottleneck;
use sfc_partition::{partition_greedy, WeightedGrid};

/// Brute-force optimal bottleneck for a 1-D weight sequence split into at
/// most `p` contiguous parts, by dynamic programming.
#[allow(clippy::needless_range_loop)] // index-form DP recurrences read clearer
fn dp_bottleneck(weights: &[f64], p: usize) -> f64 {
    let n = weights.len();
    let mut prefix = vec![0.0f64; n + 1];
    for (i, w) in weights.iter().enumerate() {
        prefix[i + 1] = prefix[i] + w;
    }
    let seg = |a: usize, b: usize| prefix[b] - prefix[a];
    // dp[j][i] = min bottleneck splitting weights[..i] into j parts.
    let mut dp = vec![f64::INFINITY; n + 1];
    dp[0] = 0.0;
    for i in 1..=n {
        dp[i] = seg(0, i);
    }
    for _ in 2..=p {
        let mut next = vec![f64::INFINITY; n + 1];
        next[0] = 0.0;
        for i in 1..=n {
            let mut best = f64::INFINITY;
            for cut in 0..i {
                best = best.min(dp[cut].max(seg(cut, i)));
            }
            next[i] = best;
        }
        dp = next;
    }
    dp[n]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bisection-based min-bottleneck partitioner matches the exact DP
    /// optimum on random 1-D weight sequences (8 cells, the d=1, k=3 grid).
    #[test]
    fn min_bottleneck_matches_dp(
        raw in proptest::collection::vec(0.0f64..100.0, 8),
        p in 1usize..6,
    ) {
        let grid = Grid::<1>::new(3).unwrap();
        let curve = SimpleCurve::<1>::over(grid);
        let weights = WeightedGrid::from_weights(grid, raw.clone());
        let partition = partition_min_bottleneck(&curve, &weights, p, 1e-12);
        let measured = partition.bottleneck(&raw);
        let optimal = dp_bottleneck(&raw, p);
        let total: f64 = raw.iter().sum();
        prop_assert!(
            (measured - optimal).abs() <= 1e-6 * total.max(1.0),
            "measured {measured} vs DP optimum {optimal} (p = {p}, weights {raw:?})"
        );
    }

    /// Greedy bottleneck is at most optimum + max single weight (the
    /// classical greedy guarantee), and never below the optimum.
    #[test]
    fn greedy_respects_classical_guarantee(
        raw in proptest::collection::vec(0.0f64..50.0, 8),
        p in 1usize..5,
    ) {
        let grid = Grid::<1>::new(3).unwrap();
        let curve = SimpleCurve::<1>::over(grid);
        let weights = WeightedGrid::from_weights(grid, raw.clone());
        let greedy = partition_greedy(&curve, &weights, p).bottleneck(&raw);
        let optimal = dp_bottleneck(&raw, p);
        let max_w = raw.iter().cloned().fold(0.0, f64::max);
        prop_assert!(greedy >= optimal - 1e-9, "greedy {greedy} < optimal {optimal}");
        prop_assert!(
            greedy <= optimal + max_w + 1e-9,
            "greedy {greedy} > optimal {optimal} + max {max_w}"
        );
    }
}
