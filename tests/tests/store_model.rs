//! Model-based testing of `SfcStore`: random interleavings of
//! insert / update / delete / flush / compact are replayed against a plain
//! `BTreeMap<CurveIndex, payload>` model, and every observable view of the
//! store — point gets, live count, the snapshot iterator, box queries
//! (both strategies), and kNN — must agree with the model at every
//! checkpoint. Tiny memtable capacities force many flushes and merges, so
//! tombstones routinely end up in *newer runs shadowing older ones*, the
//! case single-level tests can't reach.

use proptest::prelude::*;
use sfc_core::{CurveIndex, Grid, HilbertCurve, Point, SpaceFillingCurve, ZCurve};
use sfc_index::BoxRegion;
use sfc_integration::test_rng;
use sfc_store::{BatchOp, SfcStore, ShardedSfcStore};
use std::collections::BTreeMap;

/// One random operation of the interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u32, u32, u32),
    Delete(u32, u32),
    Flush,
    Compact,
}

fn random_ops(len: usize, side: u32, seed: u64) -> Vec<Op> {
    use rand::Rng;
    let mut rng = test_rng(seed);
    (0..len)
        .map(|i| {
            let x = rng.gen_range(0..side);
            let y = rng.gen_range(0..side);
            match rng.gen_range(0..10u32) {
                // Deletes are frequent enough to seed plenty of tombstones.
                0..=5 => Op::Insert(x, y, i as u32),
                6..=8 => Op::Delete(x, y),
                9 => {
                    if rng.gen_range(0..4u32) == 0 {
                        Op::Compact
                    } else {
                        Op::Flush
                    }
                }
                _ => unreachable!(),
            }
        })
        .collect()
}

/// Applies one op to both the store and the model.
fn apply<C: SpaceFillingCurve<2> + Clone>(
    store: &mut SfcStore<2, u32, C>,
    model: &mut BTreeMap<CurveIndex, (Point<2>, u32)>,
    op: Op,
) {
    match op {
        Op::Insert(x, y, v) => {
            let p = Point::new([x, y]);
            let key = store.curve().index_of(p);
            let was_live_store = store.insert(p, v);
            let was_live_model = model.insert(key, (p, v)).is_some();
            assert_eq!(was_live_store, was_live_model, "insert visibility");
        }
        Op::Delete(x, y) => {
            let p = Point::new([x, y]);
            let key = store.curve().index_of(p);
            let was_live_store = store.delete(p);
            let was_live_model = model.remove(&key).is_some();
            assert_eq!(was_live_store, was_live_model, "delete visibility");
        }
        Op::Flush => store.flush(),
        Op::Compact => store.compact(),
    }
}

/// Full observable-state comparison between store and model.
fn check_against_model<C: SpaceFillingCurve<2> + Clone>(
    store: &SfcStore<2, u32, C>,
    model: &BTreeMap<CurveIndex, (Point<2>, u32)>,
    seed: u64,
) {
    use rand::Rng;
    let grid = store.curve().grid();
    assert_eq!(store.len(), model.len(), "live count");

    // Snapshot iterator reproduces the model exactly, in key order.
    let snapshot: Vec<(CurveIndex, Point<2>, u32)> =
        store.iter().map(|e| (e.key, e.point, *e.payload)).collect();
    let expected: Vec<(CurveIndex, Point<2>, u32)> =
        model.iter().map(|(&k, &(p, v))| (k, p, v)).collect();
    assert_eq!(snapshot, expected, "snapshot");

    // Point gets agree on hits, shadowed cells, and misses.
    let mut rng = test_rng(seed ^ 0x5eed);
    for _ in 0..40 {
        let p = grid.random_cell(&mut rng);
        let key = store.curve().index_of(p);
        assert_eq!(
            store.get(p).copied(),
            model.get(&key).map(|&(_, v)| v),
            "get({p})"
        );
    }

    // Box queries match the filtered model — and the zone-mapped paths
    // (galloped intervals, planner) are byte-identical to the pre-change
    // plain scans.
    for _ in 0..8 {
        let a = grid.random_cell(&mut rng);
        let b = grid.random_cell(&mut rng);
        let lo = Point::new([a.coord(0).min(b.coord(0)), a.coord(1).min(b.coord(1))]);
        let hi = Point::new([a.coord(0).max(b.coord(0)), a.coord(1).max(b.coord(1))]);
        let region = BoxRegion::new(lo, hi);
        let (hits, stats) = store.query_box_intervals(&region);
        let got: Vec<(CurveIndex, u32)> = hits.iter().map(|e| (e.key, *e.payload)).collect();
        let want: Vec<(CurveIndex, u32)> = model
            .iter()
            .filter(|(_, &(p, _))| region.contains(&p))
            .map(|(&k, &(_, v))| (k, v))
            .collect();
        assert_eq!(got, want, "box {region:?}");
        assert_eq!(stats.reported as usize, got.len());
        let flat = |v: &[sfc_store::StoreEntryRef<'_, 2, u32>]| {
            v.iter()
                .map(|e| (e.key, e.point, *e.payload))
                .collect::<Vec<_>>()
        };
        let zone = flat(&hits);
        let (plain, _) = store.query_box_intervals_plain(&region);
        assert_eq!(zone, flat(&plain), "zone-mapped vs plain intervals");
        let (planned, _) = store.query_box(&region);
        assert_eq!(zone, flat(&planned), "planner vs intervals");
    }

    // kNN over the merged view is exact — and byte-identical to the
    // pre-change plain kNN.
    for _ in 0..5 {
        let q = grid.random_cell(&mut rng);
        let k = rng.gen_range(1..6usize);
        let (got, stats) = store.knn(q, k, 3);
        let want = store.knn_linear(q, k);
        let gd: Vec<u64> = got.iter().map(|e| q.euclidean_sq(&e.point)).collect();
        let wd: Vec<u64> = want.iter().map(|e| q.euclidean_sq(&e.point)).collect();
        assert_eq!(gd, wd, "knn k={k} q={q}");
        assert_eq!(stats.reported as usize, k.min(store.len()));
        let flat = |v: &[sfc_store::StoreEntryRef<'_, 2, u32>]| {
            v.iter()
                .map(|e| (e.key, e.point, *e.payload))
                .collect::<Vec<_>>()
        };
        let (plain, _) = store.knn_plain(q, k, 3);
        assert_eq!(flat(&got), flat(&plain), "knn vs knn_plain k={k} q={q}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Z-curve store vs model, with the BIGMIN strategy additionally
    /// cross-checked against the interval strategy on every checkpoint.
    #[test]
    fn z_store_matches_btreemap_model(seed in any::<u64>(), cap in 1usize..32) {
        let grid = Grid::<2>::new(4).unwrap();
        let curve = ZCurve::over(grid);
        let mut store = SfcStore::with_memtable_capacity(curve, cap);
        let mut model: BTreeMap<CurveIndex, (Point<2>, u32)> = BTreeMap::new();
        let ops = random_ops(300, 16, seed);
        for (i, chunk) in ops.chunks(60).enumerate() {
            for &op in chunk {
                apply(&mut store, &mut model, op);
            }
            check_against_model(&store, &model, seed.wrapping_add(i as u64));
            // BIGMIN spans levels identically to the interval strategy —
            // zone-mapped, plain, and planner alike.
            let region = BoxRegion::new(Point::new([2, 3]), Point::new([11, 9]));
            let (bm, _) = store.query_box_bigmin(&region);
            let (iv, _) = store.query_box_intervals(&region);
            let flat = |v: &[sfc_store::StoreEntryRef<'_, 2, u32>]| {
                v.iter().map(|e| (e.key, e.point, *e.payload)).collect::<Vec<_>>()
            };
            prop_assert_eq!(flat(&bm), flat(&iv));
            let (bm_plain, _) = store.query_box_bigmin_plain(&region);
            prop_assert_eq!(flat(&bm), flat(&bm_plain));
            let (planned, _) = store.query_box(&region);
            prop_assert_eq!(flat(&bm), flat(&planned));
        }
    }

    /// The same interleavings hold for a non-Morton curve (Hilbert), where
    /// only the interval strategy exists.
    #[test]
    fn hilbert_store_matches_btreemap_model(seed in any::<u64>(), cap in 1usize..24) {
        let grid = Grid::<2>::new(4).unwrap();
        let curve = HilbertCurve::over(grid);
        let mut store = SfcStore::with_memtable_capacity(curve, cap);
        let mut model: BTreeMap<CurveIndex, (Point<2>, u32)> = BTreeMap::new();
        for &op in &random_ops(250, 16, seed) {
            apply(&mut store, &mut model, op);
        }
        check_against_model(&store, &model, seed);
        // After a major compaction the store is a single tombstone-free
        // run and still equals the model.
        store.compact();
        prop_assert!(store.run_lens().len() <= 1);
        prop_assert_eq!(store.run_lens().iter().sum::<usize>(), model.len());
        check_against_model(&store, &model, seed ^ 1);
    }
}

/// One random operation of the sharded interleaving; `Rebalance` has no
/// single-store analogue and is applied to the sharded side only.
#[derive(Debug, Clone, Copy)]
enum ShardedOp {
    Insert(u32, u32, u32),
    Delete(u32, u32),
    Flush,
    Compact,
    Rebalance,
}

fn random_sharded_ops(len: usize, side: u32, seed: u64) -> Vec<ShardedOp> {
    use rand::Rng;
    let mut rng = test_rng(seed);
    (0..len)
        .map(|i| {
            let x = rng.gen_range(0..side);
            let y = rng.gen_range(0..side);
            match rng.gen_range(0..12u32) {
                0..=6 => ShardedOp::Insert(x, y, i as u32),
                7..=9 => ShardedOp::Delete(x, y),
                10 => {
                    if rng.gen_range(0..4u32) == 0 {
                        ShardedOp::Compact
                    } else {
                        ShardedOp::Flush
                    }
                }
                // Rebalances are frequent enough that records routinely
                // migrate between shards mid-interleaving.
                11 => ShardedOp::Rebalance,
                _ => unreachable!(),
            }
        })
        .collect()
}

/// Byte-level comparison of every observable view of the sharded store
/// against the single store and the model. The concurrent sharded store
/// returns owned [`sfc_store::StoreEntry`] values and `&self` everywhere;
/// the single store keeps its borrowed API — both flatten to the same
/// triples.
fn check_sharded_against_single_and_model(
    sharded: &ShardedSfcStore<2, u32, ZCurve<2>>,
    single: &SfcStore<2, u32, ZCurve<2>>,
    model: &BTreeMap<CurveIndex, (Point<2>, u32)>,
    seed: u64,
) {
    use rand::Rng;
    let grid = single.curve().grid();
    assert_eq!(sharded.len(), model.len(), "live count vs model");
    assert_eq!(sharded.len(), single.len(), "live count vs single");

    let flat_owned = |v: &[sfc_store::StoreEntry<2, u32>]| {
        v.iter()
            .map(|e| (e.key, e.point, e.payload))
            .collect::<Vec<_>>()
    };
    let flat_ref = |v: &[sfc_store::StoreEntryRef<'_, 2, u32>]| {
        v.iter()
            .map(|e| (e.key, e.point, *e.payload))
            .collect::<Vec<_>>()
    };
    let flat_sharded: Vec<(CurveIndex, Point<2>, u32)> = sharded
        .iter()
        .map(|e| (e.key, e.point, e.payload))
        .collect();
    let flat_single: Vec<(CurveIndex, Point<2>, u32)> = single
        .iter()
        .map(|e| (e.key, e.point, *e.payload))
        .collect();
    assert_eq!(&flat_sharded, &flat_single, "merged iteration");
    let flat_model: Vec<(CurveIndex, Point<2>, u32)> =
        model.iter().map(|(&k, &(p, v))| (k, p, v)).collect();
    assert_eq!(&flat_sharded, &flat_model, "iteration vs model");

    let mut rng = test_rng(seed ^ 0x51a4d);
    for _ in 0..20 {
        let p = grid.random_cell(&mut rng);
        assert_eq!(sharded.get(p), single.get(p).copied(), "get({p})");
    }
    for _ in 0..6 {
        let a = grid.random_cell(&mut rng);
        let b = grid.random_cell(&mut rng);
        let lo = Point::new([a.coord(0).min(b.coord(0)), a.coord(1).min(b.coord(1))]);
        let hi = Point::new([a.coord(0).max(b.coord(0)), a.coord(1).max(b.coord(1))]);
        let region = BoxRegion::new(lo, hi);
        let (siv, _) = sharded.query_box_intervals(&region);
        let (uiv, _) = single.query_box_intervals(&region);
        assert_eq!(flat_owned(&siv), flat_ref(&uiv), "intervals on {region:?}");
        let (sbm, _) = sharded.query_box_bigmin(&region);
        let (ubm, _) = single.query_box_bigmin(&region);
        assert_eq!(flat_owned(&sbm), flat_ref(&ubm), "bigmin on {region:?}");
        // The scoped-thread parallel fan-outs are byte-identical to the
        // sequential ones (satellite: no longer a tautology — the
        // per-shard scans really run on worker threads).
        let (spar, _) = sharded.query_box_par(&region);
        assert_eq!(
            flat_owned(&spar),
            flat_ref(&uiv),
            "par planner on {region:?}"
        );
        let (sbpar, _) = sharded.query_box_bigmin_par(&region);
        assert_eq!(
            flat_owned(&sbpar),
            flat_ref(&ubm),
            "par bigmin on {region:?}"
        );
    }
    for _ in 0..4 {
        let q = grid.random_cell(&mut rng);
        let k = rng.gen_range(1..6usize);
        let (sk, _) = sharded.knn(q, k, 3);
        let (uk, _) = single.knn(q, k, 3);
        assert_eq!(flat_owned(&sk), flat_ref(&uk), "knn k={k} q={q}");
        let (skp, _) = sharded.knn_par(q, k, 3);
        assert_eq!(flat_owned(&skp), flat_ref(&uk), "par knn k={k} q={q}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded store vs single store vs BTreeMap model under random
    /// insert / update / delete / flush / compact / **rebalance**
    /// interleavings across 1–4 shards: every observable view must be
    /// byte-identical to the single store's (and therefore to the model).
    #[test]
    fn sharded_store_matches_single_store_and_model(
        seed in any::<u64>(),
        cap in 1usize..24,
        parts in 1usize..5,
    ) {
        let grid = Grid::<2>::new(4).unwrap();
        let curve = ZCurve::over(grid);
        // `&self` writes: no `mut` binding needed for the sharded side.
        let sharded = ShardedSfcStore::with_memtable_capacity(curve, parts, cap);
        let mut single = SfcStore::with_memtable_capacity(curve, cap);
        let mut model: BTreeMap<CurveIndex, (Point<2>, u32)> = BTreeMap::new();
        let ops = random_sharded_ops(300, 16, seed);
        for (i, chunk) in ops.chunks(75).enumerate() {
            for &op in chunk {
                match op {
                    ShardedOp::Insert(x, y, v) => {
                        let p = Point::new([x, y]);
                        let key = curve.index_of(p);
                        let a = sharded.insert(p, v);
                        let b = single.insert(p, v);
                        let c = model.insert(key, (p, v)).is_some();
                        prop_assert_eq!(a, b, "insert visibility vs single");
                        prop_assert_eq!(a, c, "insert visibility vs model");
                    }
                    ShardedOp::Delete(x, y) => {
                        let p = Point::new([x, y]);
                        let key = curve.index_of(p);
                        let a = sharded.delete(p);
                        let b = single.delete(p);
                        let c = model.remove(&key).is_some();
                        prop_assert_eq!(a, b, "delete visibility vs single");
                        prop_assert_eq!(a, c, "delete visibility vs model");
                    }
                    ShardedOp::Flush => {
                        sharded.flush();
                        single.flush();
                    }
                    ShardedOp::Compact => {
                        sharded.compact();
                        single.compact();
                    }
                    ShardedOp::Rebalance => {
                        sharded.rebalance(1e-9);
                    }
                }
            }
            check_sharded_against_single_and_model(
                &sharded,
                &single,
                &model,
                seed.wrapping_add(i as u64),
            );
        }
        // A final rebalance + compaction sweep leaves everything intact.
        sharded.rebalance(1e-9);
        sharded.compact();
        check_sharded_against_single_and_model(&sharded, &single, &model, seed ^ 0xfe);
    }
}

/// One action of the batched differential interleaving: a whole batch of
/// `(x, y, Some(v) | None)` records, or a store-wide maintenance op.
#[derive(Debug, Clone)]
enum BatchAction {
    Batch(Vec<(u32, u32, Option<u32>)>),
    Flush,
    Compact,
    Rebalance,
}

fn random_batch_actions(len: usize, side: u32, seed: u64) -> Vec<BatchAction> {
    use rand::Rng;
    let mut rng = test_rng(seed);
    (0..len)
        .map(|i| match rng.gen_range(0..8u32) {
            0..=5 => {
                let n = rng.gen_range(1..=10usize);
                // Confined to a quarter of the grid so batches routinely
                // write the same cell twice — the last-wins case.
                BatchAction::Batch(
                    (0..n)
                        .map(|j| {
                            let x = rng.gen_range(0..side / 2);
                            let y = rng.gen_range(0..side / 2);
                            let v = if rng.gen_range(0..4u32) == 3 {
                                None
                            } else {
                                Some((i * 100 + j) as u32)
                            };
                            (x, y, v)
                        })
                        .collect(),
                )
            }
            6 => BatchAction::Flush,
            7 => {
                if rng.gen_range(0..3u32) == 0 {
                    BatchAction::Rebalance
                } else {
                    BatchAction::Compact
                }
            }
            _ => unreachable!(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential: `apply_batch` is observably equivalent to applying
    /// the same ops one-by-one in slice order — on both the single and
    /// the sharded store, interleaved with flushes, compactions, and
    /// rebalances, and including batches that write the same cell twice
    /// (the later op must win despite the internal key sort).
    #[test]
    fn batched_writes_match_per_record_application(
        seed in any::<u64>(),
        cap in 1usize..24,
        parts in 1usize..5,
    ) {
        let grid = Grid::<2>::new(4).unwrap();
        let curve = ZCurve::over(grid);
        let sharded = ShardedSfcStore::with_memtable_capacity(curve, parts, cap);
        let mut single = SfcStore::with_memtable_capacity(curve, cap);
        // The per-record twins replay every batch op individually.
        let sharded_ref = ShardedSfcStore::with_memtable_capacity(curve, parts, cap);
        let mut single_ref = SfcStore::with_memtable_capacity(curve, cap);
        let mut model: BTreeMap<CurveIndex, (Point<2>, u32)> = BTreeMap::new();
        let actions = random_batch_actions(80, 16, seed);
        for (i, chunk) in actions.chunks(20).enumerate() {
            for action in chunk {
                match action {
                    BatchAction::Batch(recs) => {
                        let ops: Vec<BatchOp<2, u32>> = recs
                            .iter()
                            .map(|&(x, y, v)| {
                                let p = Point::new([x, y]);
                                match v {
                                    Some(v) => BatchOp::Insert(p, v),
                                    None => BatchOp::Delete(p),
                                }
                            })
                            .collect();
                        sharded.apply_batch(&ops);
                        single.apply_batch(&ops);
                        for &(x, y, v) in recs {
                            let p = Point::new([x, y]);
                            let key = curve.index_of(p);
                            match v {
                                Some(v) => {
                                    sharded_ref.insert(p, v);
                                    single_ref.insert(p, v);
                                    model.insert(key, (p, v));
                                }
                                None => {
                                    sharded_ref.delete(p);
                                    single_ref.delete(p);
                                    model.remove(&key);
                                }
                            }
                        }
                    }
                    BatchAction::Flush => {
                        sharded.flush();
                        single.flush();
                        sharded_ref.flush();
                        single_ref.flush();
                    }
                    BatchAction::Compact => {
                        sharded.compact();
                        single.compact();
                        sharded_ref.compact();
                        single_ref.compact();
                    }
                    BatchAction::Rebalance => {
                        sharded.rebalance(1e-9);
                        sharded_ref.rebalance(1e-9);
                    }
                }
            }
            // Full query coverage for the batched pair (vs the model)…
            check_sharded_against_single_and_model(
                &sharded,
                &single,
                &model,
                seed.wrapping_add(i as u64),
            );
            // …and byte-identical iteration against the per-record twins.
            let batched: Vec<(CurveIndex, Point<2>, u32)> =
                sharded.iter().map(|e| (e.key, e.point, e.payload)).collect();
            let recorded: Vec<(CurveIndex, Point<2>, u32)> = sharded_ref
                .iter()
                .map(|e| (e.key, e.point, e.payload))
                .collect();
            prop_assert_eq!(batched, recorded, "sharded: batch vs per-record");
            let batched: Vec<(CurveIndex, Point<2>, u32)> =
                single.iter().map(|e| (e.key, e.point, *e.payload)).collect();
            let recorded: Vec<(CurveIndex, Point<2>, u32)> = single_ref
                .iter()
                .map(|e| (e.key, e.point, *e.payload))
                .collect();
            prop_assert_eq!(batched, recorded, "single: batch vs per-record");
        }
    }
}

/// Tombstone-heavy interleavings: deletes dominate, so runs end up mostly
/// (sometimes entirely) tombstones and zone-map blocks routinely go
/// all-dead. Every observable view — box (both strategies and the
/// planner), kNN, iter — must stay byte-identical to the model and to the
/// pre-change plain scans.
fn random_tombstone_heavy_ops(len: usize, side: u32, seed: u64) -> Vec<Op> {
    use rand::Rng;
    let mut rng = test_rng(seed);
    (0..len)
        .map(|i| {
            // Confine writes to a narrow band so deletes actually hit
            // earlier inserts instead of missing at random.
            let x = rng.gen_range(0..side / 2);
            let y = rng.gen_range(0..side / 2);
            match rng.gen_range(0..10u32) {
                0..=2 => Op::Insert(x, y, i as u32),
                3..=8 => Op::Delete(x, y),
                9 => Op::Flush,
                _ => unreachable!(),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tombstone_heavy_store_matches_model_and_plain_scans(
        seed in any::<u64>(),
        cap in 1usize..16,
    ) {
        let grid = Grid::<2>::new(4).unwrap();
        let curve = ZCurve::over(grid);
        let mut store = SfcStore::with_memtable_capacity(curve, cap);
        let mut model: BTreeMap<CurveIndex, (Point<2>, u32)> = BTreeMap::new();
        let ops = random_tombstone_heavy_ops(400, 16, seed);
        for (i, chunk) in ops.chunks(100).enumerate() {
            for &op in chunk {
                apply(&mut store, &mut model, op);
            }
            check_against_model(&store, &model, seed.wrapping_add(i as u64));
        }
    }
}

/// Deterministic all-dead-block shape: a curve-contiguous region is bulk
/// inserted, flushed into a run, then deleted cell by cell and flushed
/// again — the tombstone run consists of several *entirely dead* zone-map
/// blocks shadowing the bottom run. Box queries must still honor the
/// tombstones (no resurrection), kNN candidate collection must skip the
/// dead blocks, and everything stays byte-identical to the plain scans.
#[test]
fn all_dead_blocks_shadow_correctly_and_are_skipped_by_knn() {
    let grid = Grid::<2>::new(5).unwrap(); // 32×32
    let z = ZCurve::over(grid);
    let mut store = SfcStore::with_memtable_capacity(z, 4096);
    // The Z quadrant [0,16)² is exactly the contiguous key range 0..256.
    let quadrant = BoxRegion::new(Point::new([0, 0]), Point::new([15, 15]));
    for (i, cell) in quadrant.cells().enumerate() {
        store.insert(cell, i as u32);
    }
    // Background records elsewhere keep the store non-empty afterwards —
    // and make the bottom run big enough (≥ 2 × 256) that the size-tiered
    // policy does NOT merge the upcoming tombstone run into it.
    let background = BoxRegion::new(Point::new([16, 0]), Point::new([31, 31]));
    for (i, cell) in background.cells().enumerate() {
        store.insert(cell, 10_000 + i as u32);
    }
    store.flush();
    for cell in quadrant.cells() {
        store.delete(cell);
    }
    store.flush();
    // The newest run now holds 256 contiguous tombstones — at block size
    // 64 that is at least 4 entirely dead blocks.
    assert_eq!(
        store.run_lens(),
        vec![768, 256],
        "tombstone run must survive"
    );
    assert_eq!(store.len(), 512);

    let flat = |v: &[sfc_store::StoreEntryRef<'_, 2, u32>]| {
        v.iter()
            .map(|e| (e.key, e.point, *e.payload))
            .collect::<Vec<_>>()
    };
    // Box queries over the dead region: every strategy agrees on "empty".
    let (iv, _) = store.query_box_intervals(&quadrant);
    let (bm, _) = store.query_box_bigmin(&quadrant);
    let (pl, _) = store.query_box(&quadrant);
    let (iv_plain, _) = store.query_box_intervals_plain(&quadrant);
    let (bm_plain, _) = store.query_box_bigmin_plain(&quadrant);
    assert!(iv.is_empty(), "tombstoned region resurrected: {:?}", iv[0]);
    assert_eq!(flat(&iv), flat(&bm));
    assert_eq!(flat(&iv), flat(&pl));
    assert_eq!(flat(&iv), flat(&iv_plain));
    assert_eq!(flat(&iv), flat(&bm_plain));
    // Iteration sees only the live half.
    assert_eq!(store.iter().count(), 512);
    assert!(store.iter().all(|e| e.point.coord(0) >= 16));

    // kNN from inside the dead region: exact, identical to plain, and the
    // dead blocks are observably skipped.
    let q = Point::new([5, 5]);
    for k in [1usize, 4, 10] {
        let (got, stats) = store.knn(q, k, 3);
        let want = store.knn_linear(q, k);
        let gd: Vec<u64> = got.iter().map(|e| q.euclidean_sq(&e.point)).collect();
        let wd: Vec<u64> = want.iter().map(|e| q.euclidean_sq(&e.point)).collect();
        assert_eq!(gd, wd, "knn k={k}");
        let (plain, _) = store.knn_plain(q, k, 3);
        assert_eq!(flat(&got), flat(&plain), "knn vs plain k={k}");
        assert!(
            stats.blocks_pruned > 0,
            "kNN near all-dead blocks must skip some: {stats:?}"
        );
    }
}

/// Deterministic regression for the canonical tombstone-across-runs shape:
/// a key written into the bottom run, tombstoned in a *newer* run, then
/// resurrected in the memtable — every transition observable.
#[test]
fn tombstone_across_runs_lifecycle() {
    let grid = Grid::<2>::new(4).unwrap();
    let mut store = SfcStore::with_memtable_capacity(ZCurve::over(grid), 64);
    let p = Point::new([9, 4]);
    // Bottom run holds p …
    store.insert(p, 1u32);
    for i in 0..32u32 {
        store.insert(Point::new([i % 8, i / 8]), 100 + i);
    }
    store.flush();
    assert_eq!(store.get(p), Some(&1));
    // … a newer run holds only its tombstone …
    store.delete(p);
    store.flush();
    assert!(store.run_lens().len() >= 2, "runs: {:?}", store.run_lens());
    assert_eq!(store.get(p), None);
    assert!(store.iter().all(|e| e.point != p));
    // … the memtable resurrects it over the tombstone …
    store.insert(p, 3u32);
    assert_eq!(store.get(p), Some(&3));
    // … and compaction folds all three versions into one live record.
    store.compact();
    assert_eq!(store.get(p), Some(&3));
    assert_eq!(store.run_lens().iter().sum::<usize>(), store.len());
}
