//! End-to-end reproduction pipeline: the paper's claims checked through
//! the public facade, exactly as a downstream user would.

use sfc::metrics::{all_pairs, bounds, lambda, nn_stretch};
use sfc::prelude::*;

/// The complete claim chain of the paper for d = 2, k = 4 (n = 256):
/// Theorem 1 bound ≤ D^avg(Z) ≤ D^max(Z), Lemma 3 brackets, Lemma 2
/// universality, Proposition 2 exactness.
#[test]
fn full_claim_chain_d2() {
    let k = 4;
    let z = ZCurve::<2>::new(k).unwrap();
    let s = nn_stretch::summarize_par(&z);

    // Theorem 1.
    let bound = bounds::thm1_nn_stretch_lower_bound(k, 2);
    assert!(s.d_avg() >= bound);

    // Proposition 1 (D^max dominates).
    assert!(s.d_max() >= s.d_avg());

    // Lemma 3 brackets D^avg by the edge sum.
    assert!(s.d_avg() >= bounds::lemma3_lower(s.edge_sum, s.n, 2) - 1e-12);
    assert!(s.d_avg() <= bounds::lemma3_upper(s.edge_sum, s.n, 2) + 1e-12);

    // Lemma 5 machinery: Σ_i Λ_i equals the measured edge sum.
    let lambda_total: u128 = (0..2).map(|axis| lambda::lambda_measured(&z, axis)).sum();
    assert_eq!(lambda_total, s.edge_sum);

    // Lemma 2: the all-pairs sum is curve-independent.
    let ap = all_pairs::all_pairs_exact_par(&z);
    assert_eq!(ap.sa_prime, bounds::lemma2_sa_prime(s.n));

    // Proposition 3: all-pairs stretch lower bounds.
    assert!(ap.manhattan >= bounds::prop3_all_pairs_lower_manhattan(k, 2) - 1e-9);
    assert!(ap.euclidean >= bounds::prop3_all_pairs_lower_euclidean(k, 2) - 1e-9);

    // Proposition 2 for the simple curve on the same grid.
    let simple = nn_stretch::summarize_par(&SimpleCurve::<2>::new(k).unwrap());
    assert!(simple.d_max_equals_ratio(bounds::prop2_dmax_simple_exact(k, 2), 1));
}

/// Theorem 2 + Theorem 3: Z and simple have the *same* asymptotic
/// stretch, and both converge to (1/d)·n^{1−1/d} from the data's direction.
#[test]
fn z_and_simple_share_the_asymptote() {
    for d2k in [4u32, 6, 8] {
        let z = nn_stretch::summarize_par(&ZCurve::<2>::new(d2k).unwrap());
        let s = nn_stretch::summarize_par(&SimpleCurve::<2>::new(d2k).unwrap());
        let asym = bounds::nn_stretch_asymptote(d2k, 2);
        let rz = z.d_avg() / asym;
        let rs = s.d_avg() / asym;
        // Both normalized values lie in (0.9, 1.2) by k = 4 and tighten
        // with k.
        assert!((0.9..1.2).contains(&rz), "Z k={d2k}: {rz}");
        assert!((0.9..1.2).contains(&rs), "S k={d2k}: {rs}");
    }
    // Convergence: at k = 8 both are within 2% of the asymptote.
    let asym = bounds::nn_stretch_asymptote(8, 2);
    let z = nn_stretch::summarize_par(&ZCurve::<2>::new(8).unwrap());
    let s = nn_stretch::summarize_par(&SimpleCurve::<2>::new(8).unwrap());
    assert!((z.d_avg() / asym - 1.0).abs() < 0.02);
    assert!((s.d_avg() / asym - 1.0).abs() < 0.02);
}

/// The 1.5 headline, measured across dimensions at the largest enumerable
/// sizes.
#[test]
fn z_is_within_1_5_of_the_lower_bound() {
    let checks: Vec<(f64, &str)> = vec![
        (
            nn_stretch::summarize_par(&ZCurve::<2>::new(9).unwrap()).d_avg()
                / bounds::thm1_nn_stretch_lower_bound(9, 2),
            "d=2",
        ),
        (
            nn_stretch::summarize_par(&ZCurve::<3>::new(5).unwrap()).d_avg()
                / bounds::thm1_nn_stretch_lower_bound(5, 3),
            "d=3",
        ),
        (
            nn_stretch::summarize_par(&ZCurve::<4>::new(5).unwrap()).d_avg()
                / bounds::thm1_nn_stretch_lower_bound(5, 4),
            "d=4",
        ),
    ];
    // The ratio converges to 1.5 from above at rate ~2^{−k}; at these
    // sizes every dimension is within 4% of the limit.
    for (ratio, label) in checks {
        assert!(ratio >= 1.0, "{label}: Z below the bound?! {ratio}");
        assert!(
            ratio < 1.56,
            "{label}: ratio {ratio} — should be near 1.5 at these sizes"
        );
    }
}

/// Every registered experiment runs to completion and yields non-empty
/// tables (the harness is itself part of the reproduction contract).
#[test]
fn every_experiment_runs() {
    for e in sfc_bench::all_experiments() {
        let tables = (e.run)();
        assert!(!tables.is_empty(), "{} produced no tables", e.id);
        for t in &tables {
            assert!(!t.rows.is_empty(), "{}: empty table '{}'", e.id, t.title);
        }
        // Both renderers handle every table.
        let text = sfc_bench::render_tables(&tables, false);
        let md = sfc_bench::render_tables(&tables, true);
        assert!(!text.is_empty() && !md.is_empty());
    }
}

/// The paper's Figure 1 values, reproduced through the facade.
#[test]
fn figure1_values_via_facade() {
    let pi1 = PermutationCurve::figure1_pi1();
    let pi2 = PermutationCurve::figure1_pi2();
    let s1 = nn_stretch::summarize(&pi1);
    let s2 = nn_stretch::summarize(&pi2);
    assert!(s1.d_avg_equals_ratio(3, 2));
    assert!(s1.d_max_equals_ratio(2, 1));
    assert!(s2.d_avg_equals_ratio(2, 1));
    assert!(s2.d_max_equals_ratio(5, 2));
}
