//! Integration tests for the application substrates: query correctness
//! across curves and workloads, and end-to-end partition/N-body sanity.

use proptest::prelude::*;
use sfc_core::{CurveKind, Grid, HilbertCurve, Point, ZCurve};
use sfc_index::{BoxRegion, SfcIndex};
use sfc_integration::test_rng;

fn random_records(grid: Grid<2>, count: usize, seed: u64) -> Vec<(Point<2>, usize)> {
    let mut rng = test_rng(seed);
    (0..count)
        .map(|i| (grid.random_cell(&mut rng), i))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BIGMIN jumping and interval decomposition return identical result
    /// sets on random boxes and record sets.
    #[test]
    fn bigmin_equals_intervals(seed in any::<u64>(), lx in 0u32..16, ly in 0u32..16, w in 0u32..8, h in 0u32..8) {
        let grid = Grid::<2>::new(4).unwrap();
        let index = SfcIndex::build(ZCurve::over(grid), random_records(grid, 300, seed));
        let hi = Point::new([(lx + w).min(15), (ly + h).min(15)]);
        let region = BoxRegion::new(Point::new([lx.min(hi.coord(0)), ly.min(hi.coord(1))]), hi);
        let (a, _) = index.query_box_bigmin(&region);
        let (b, _) = index.query_box_intervals(&region);
        let mut ka: Vec<usize> = a.iter().map(|e| *e.payload).collect();
        let mut kb: Vec<usize> = b.iter().map(|e| *e.payload).collect();
        ka.sort_unstable();
        kb.sort_unstable();
        prop_assert_eq!(ka, kb);
    }

    /// Verified kNN equals the linear-scan ground truth in distance
    /// profile, for random queries on random data, under both Z and
    /// Hilbert.
    #[test]
    fn knn_is_exact(seed in any::<u64>(), qx in 0u32..16, qy in 0u32..16, k in 1usize..10) {
        let grid = Grid::<2>::new(4).unwrap();
        let records = random_records(grid, 150, seed);
        let q = Point::new([qx, qy]);

        let zidx = SfcIndex::build(ZCurve::over(grid), records.clone());
        let (got, _) = zidx.knn(q, k, 4);
        let want = zidx.knn_linear(q, k);
        let gd: Vec<u64> = got.iter().map(|e| q.euclidean_sq(&e.point)).collect();
        let wd: Vec<u64> = want.iter().map(|e| q.euclidean_sq(&e.point)).collect();
        prop_assert_eq!(&gd, &wd);

        let hidx = SfcIndex::build(HilbertCurve::over(grid), records);
        let (got_h, _) = hidx.knn(q, k, 4);
        let hd: Vec<u64> = got_h.iter().map(|e| q.euclidean_sq(&e.point)).collect();
        prop_assert_eq!(&hd, &wd);
    }

    /// The fast kNN path stays exact under the conditions the unit tests
    /// don't reach: random candidate-window sizes (including windows far
    /// too small for k), duplicate-heavy record sets, k exceeding the
    /// record count, and 3 dimensions.
    #[test]
    fn knn_is_exact_under_stress(
        seed in any::<u64>(),
        qx in 0u32..32, qy in 0u32..32,
        k in 1usize..20,
        window in 1usize..8,
        count in 1usize..200,
    ) {
        let grid = Grid::<2>::new(5).unwrap();
        let mut records = random_records(grid, count, seed);
        // Duplicate a prefix so many cells hold several records.
        let dupes: Vec<(Point<2>, usize)> = records
            .iter()
            .take(count / 2)
            .map(|&(p, payload)| (p, payload + 10_000))
            .collect();
        records.extend(dupes);
        let q = Point::new([qx, qy]);
        let idx = SfcIndex::build(ZCurve::over(grid), records);
        let (got, stats) = idx.knn(q, k, window);
        let want = idx.knn_linear(q, k);
        let gd: Vec<u64> = got.iter().map(|e| q.euclidean_sq(&e.point)).collect();
        let wd: Vec<u64> = want.iter().map(|e| q.euclidean_sq(&e.point)).collect();
        prop_assert_eq!(gd, wd);
        prop_assert_eq!(stats.reported as usize, k.min(idx.len()));
    }

    /// Same exactness in 3 dimensions, where the verification ball is a
    /// cube and the curve kernels take different code paths.
    #[test]
    fn knn_is_exact_3d(seed in any::<u64>(), coords in proptest::array::uniform3(0u32..16), k in 1usize..8) {
        let grid = Grid::<3>::new(4).unwrap();
        let mut rng = test_rng(seed);
        let records: Vec<(Point<3>, usize)> =
            (0..120).map(|i| (grid.random_cell(&mut rng), i)).collect();
        let q = Point::new(coords);
        for kind in [CurveKind::Z, CurveKind::Hilbert] {
            let idx = SfcIndex::build(kind.build::<3>(4).unwrap(), records.clone());
            let (got, _) = idx.knn(q, k, 3);
            let want = idx.knn_linear(q, k);
            let gd: Vec<u64> = got.iter().map(|e| q.euclidean_sq(&e.point)).collect();
            let wd: Vec<u64> = want.iter().map(|e| q.euclidean_sq(&e.point)).collect();
            prop_assert_eq!(gd, wd);
        }
    }

    /// Partitions are well-formed for every curve, part count and
    /// workload: complete coverage, imbalance ≥ 1, cut bounded by total
    /// edges.
    #[test]
    fn partitions_are_well_formed(
        kind_idx in 0usize..5,
        p in 1usize..12,
        clustered in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use sfc_partition::{partition_greedy, quality, WeightedGrid, Workload};
        let grid = Grid::<2>::new(3).unwrap();
        let mut rng = test_rng(seed);
        let workload = if clustered {
            Workload::GaussianClusters { count: 3, sigma: 1.0 }
        } else {
            Workload::Uniform
        };
        let weights = WeightedGrid::generate(grid, workload, &mut rng);
        let curve = CurveKind::ALL[kind_idx].build::<2>(3).unwrap();
        let part = partition_greedy(&curve, &weights, p);
        prop_assert_eq!(part.parts(), p);
        prop_assert_eq!(*part.boundaries().last().unwrap(), 64u128);
        let q = quality::evaluate(&curve, &weights, &part);
        prop_assert!(q.imbalance >= 1.0 - 1e-12);
        prop_assert!(q.edge_cut <= grid.nn_edge_count() as u64);
        prop_assert!(q.comm_volume <= 64);
        // Parallel evaluation agrees exactly.
        prop_assert_eq!(q, quality::evaluate_par(&curve, &weights, &part));
    }
}

/// The index works end-to-end with a *permutation* curve (the paper's
/// fully general bijection) — queries just degrade, never break.
#[test]
fn index_with_random_bijection_curve() {
    let grid = Grid::<2>::new(3).unwrap();
    let mut rng = test_rng(42);
    let curve = sfc_core::PermutationCurve::random(grid, &mut rng).unwrap();
    let records = random_records(grid, 100, 7);
    let index = SfcIndex::build(&curve, records);
    let region = BoxRegion::new(Point::new([1, 1]), Point::new([5, 6]));
    let (hits, stats) = index.query_box_intervals(&region);
    let (full, _) = index.query_box_full_scan(&region);
    assert_eq!(hits.len(), full.len());
    // A random bijection has dreadful clustering: many seeks.
    assert!(stats.seeks >= hits.len() as u64 / 4);
    // kNN still exact.
    let q = Point::new([3, 3]);
    let (got, _) = index.knn(q, 5, 8);
    let want = index.knn_linear(q, 5);
    let gd: Vec<u64> = got.iter().map(|e| q.euclidean_sq(&e.point)).collect();
    let wd: Vec<u64> = want.iter().map(|e| q.euclidean_sq(&e.point)).collect();
    assert_eq!(gd, wd);
}

/// N-body pipeline through the facade: sample → tree → BH forces →
/// leapfrog steps, with bounded energy drift.
#[test]
fn nbody_end_to_end() {
    use sfc_nbody::body::{sample_bodies, Distribution};
    let mut rng = test_rng(11);
    let mut bodies: Vec<sfc_nbody::Body<2>> = sample_bodies(
        Distribution::Clustered {
            clusters: 3,
            sigma: 0.08,
        },
        150,
        &mut rng,
    );
    for b in bodies.iter_mut() {
        b.mass = 1.0 / 150.0;
    }
    let drift = sfc_nbody::sim::run_barnes_hut(&mut bodies, 5e-5, 10, 1e-2, 0.6, 8, 4);
    assert!(drift < 1e-2, "energy drift {drift}");
    // Decomposition summaries are finite and ordered sensibly.
    let z = ZCurve::<2>::new(6).unwrap();
    let summary = sfc_nbody::decomp::summarize(&z, &mut bodies, 4);
    assert!(summary.sequential_locality.is_finite());
    assert!(summary.mean_chunk_volume >= 0.0);
}
