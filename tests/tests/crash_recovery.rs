//! Crash-recovery harness for the durable sharded store.
//!
//! The contract under test (see `sfc-store`'s `wal` module): after any
//! crash, reopening recovers **exactly the acknowledged prefix** of the
//! write stream — every acked write is back, nothing that was never
//! written is invented, and a torn tail (only ever unacked bytes) is
//! discarded silently while damage under acked data fails the open with
//! a typed error, never a panic.
//!
//! The headline test truncates the WAL at **every byte offset** and
//! flips bits, reopening each mutilated copy and checking the recovered
//! state against a sequential `BTreeMap` replay of exactly the acked
//! prefix. CI runs this suite under `--release`.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::Rng;
use sfc_core::{CurveIndex, Grid, Point, SpaceFillingCurve, ZCurve};
use sfc_integration::test_rng;
use sfc_store::{BatchOp, ShardedSfcStore, WalConfig, WalError};

type Store = ShardedSfcStore<2, u32, ZCurve<2>>;
type Model = BTreeMap<CurveIndex, (Point<2>, u32)>;

fn curve() -> ZCurve<2> {
    ZCurve::over(Grid::from_side(64).unwrap())
}

/// A fresh scratch directory under the system temp dir, cleaned of any
/// previous run's debris. Dropping the guard removes the directory.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("sfc-crash-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Recursively copies a store directory (MANIFEST + shard subdirs).
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Every observable record of the store, as `(key, point, payload)`.
fn state_of(store: &Store) -> Vec<(CurveIndex, Point<2>, u32)> {
    store.iter().map(|e| (e.key, e.point, e.payload)).collect()
}

fn model_state(model: &Model) -> Vec<(CurveIndex, Point<2>, u32)> {
    model.iter().map(|(&k, &(p, v))| (k, p, v)).collect()
}

/// Asserts the reopened store equals the model exactly: iteration, live
/// count, and spot point-gets.
fn assert_matches_model(store: &Store, model: &Model) {
    assert_eq!(state_of(store), model_state(model), "recovered state");
    assert_eq!(store.len(), model.len(), "recovered live count");
    for (&key, &(p, v)) in model.iter().step_by(7) {
        assert_eq!(store.get(p), Some(v), "get({p}) at key {key}");
    }
}

/// One synchronous (acked) op applied to both store and model.
fn apply_acked(store: &Store, model: &mut Model, p: Point<2>, slot: Option<u32>) {
    let key = store.curve().index_of(p);
    match slot {
        Some(v) => {
            let was = store.try_insert(p, v).expect("acked insert");
            assert_eq!(
                was,
                model.insert(key, (p, v)).is_some(),
                "insert visibility"
            );
        }
        None => {
            let was = store.try_delete(p).expect("acked delete");
            assert_eq!(was, model.remove(&key).is_some(), "delete visibility");
        }
    }
}

fn reopen(dir: &Path, parts: usize, capacity: usize) -> Result<Store, WalError> {
    Store::open_durable(curve(), parts, capacity, WalConfig::new(dir))
}

// ---------------------------------------------------------------------
// Basics
// ---------------------------------------------------------------------

#[test]
fn fresh_open_and_empty_reopen() {
    let tmp = TempDir::new("empty");
    {
        let store = reopen(tmp.path(), 2, 64).unwrap();
        assert!(store.is_durable());
        assert!(store.is_empty());
        let stats = store.recovery_stats().unwrap();
        assert_eq!(stats.replayed_records, 0);
        assert_eq!(stats.runs_loaded, 0);
    }
    // Clean close, nothing ever written: reopening finds a committed
    // manifest and zero records.
    let store = reopen(tmp.path(), 2, 64).unwrap();
    assert!(store.is_empty());
    assert_eq!(store.recovery_stats().unwrap().replayed_records, 0);
}

#[test]
fn acked_writes_survive_simulated_crash() {
    let tmp = TempDir::new("acked");
    let mut model = Model::new();
    {
        let store = reopen(tmp.path(), 2, 16).unwrap();
        let mut rng = test_rng(0xACED);
        for i in 0..300u32 {
            let p = Point::new([rng.gen_range(0..64), rng.gen_range(0..64)]);
            let slot = if i % 5 == 4 { None } else { Some(i) };
            apply_acked(&store, &mut model, p, slot);
        }
        store.simulate_crash();
    }
    let store = reopen(tmp.path(), 2, 16).unwrap();
    assert_matches_model(&store, &model);
    let stats = store.recovery_stats().unwrap();
    assert!(
        stats.replayed_records + stats.skipped_records > 0 || stats.runs_loaded > 0,
        "recovery must have read something back: {stats:?}"
    );
}

#[test]
fn tombstones_only_workload_recovers_empty() {
    let tmp = TempDir::new("tombstones");
    // Capacity above the op count: no inline capacity flush may sneak
    // the tail tombstones' seqs under the checkpoint high-water.
    {
        let store = reopen(tmp.path(), 1, 64).unwrap();
        for x in 0..32u32 {
            store.try_delete(Point::new([x, x])).unwrap();
        }
        // Force some tombstones through a flush (and into a run) too.
        store.flush();
        for x in 0..16u32 {
            store.try_delete(Point::new([x, 63])).unwrap();
        }
        store.simulate_crash();
    }
    let store = reopen(tmp.path(), 1, 64).unwrap();
    assert!(store.is_empty(), "tombstones must not resurrect anything");
    let stats = store.recovery_stats().unwrap();
    assert!(
        stats.replayed_records > 0,
        "tail tombstones replay: {stats:?}"
    );
}

#[test]
fn half_published_flush_collapses_newest_wins() {
    let tmp = TempDir::new("newest-wins");
    let p = Point::new([5, 9]);
    {
        let store = reopen(tmp.path(), 1, 64).unwrap();
        store.try_insert(p, 1).unwrap();
        store.flush(); // v1 now lives in a published, persisted run
        store.try_insert(p, 2).unwrap(); // v2 only in WAL + memtable
        store.simulate_crash();
    }
    let store = reopen(tmp.path(), 1, 64).unwrap();
    assert_eq!(store.get(p), Some(2), "WAL replay must shadow the run");
    assert_eq!(store.len(), 1, "one live record, not two versions");
}

#[test]
fn nosync_writes_need_the_sync_barrier() {
    let tmp = TempDir::new("sync-barrier");
    let mut model = Model::new();
    {
        let store = reopen(tmp.path(), 2, 64).unwrap();
        for i in 0..200u32 {
            let p = Point::new([i % 64, i / 64]);
            store.insert_nosync(p, i);
            model.insert(store.curve().index_of(p), (p, i));
        }
        store.sync().expect("durability barrier");
        store.simulate_crash();
    }
    let store = reopen(tmp.path(), 2, 64).unwrap();
    // Every write preceded the sync, so every write is back.
    assert_matches_model(&store, &model);
}

// ---------------------------------------------------------------------
// The truncation sweep
// ---------------------------------------------------------------------

/// Runs a single-shard synchronous workload, recording the segment-file
/// length after each acked op — frame boundaries, since every op is its
/// own fsynced group. Returns the shard's WAL directory contents plus
/// `(file_len_after_op, op_index)` checkpoints and the op stream.
struct SweepSetup {
    ops: Vec<(Point<2>, Option<u32>)>,
    /// `boundaries[i]` = segment length after `i` acked ops (so
    /// `boundaries[0]` is the bare header).
    boundaries: Vec<u64>,
    segment: PathBuf,
    /// Model state the sweep's replay starts from (ops already flushed
    /// into runs before the swept segment began).
    base: Model,
}

fn sweep_setup(dir: &Path, with_flush: bool) -> SweepSetup {
    let mut rng = test_rng(if with_flush { 0x51EE9 } else { 0x51EE8 });
    let store = reopen(dir, 1, 1024).unwrap();
    let mut base = Model::new();
    let shard_dir = dir.join("shard0");

    if with_flush {
        // Pre-populate and flush: these land in a persisted run, the
        // flush prunes the first segment, and the sweep then mutilates
        // only the post-flush segment.
        for i in 0..12u32 {
            let p = Point::new([rng.gen_range(0..64), rng.gen_range(0..64)]);
            let slot = if i % 4 == 3 { None } else { Some(1000 + i) };
            apply_acked(&store, &mut base, p, slot);
        }
        store.flush();
        // Pruning is asynchronous (the committer reclaims segments off
        // the flush path); wait for the pre-flush segment to vanish so
        // the sweep ops deterministically open a fresh one.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let any_segment = fs::read_dir(&shard_dir).unwrap().any(|e| {
                let name = e.unwrap().file_name().to_string_lossy().into_owned();
                name.starts_with("wal-") && name.ends_with(".log")
            });
            if !any_segment {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "flush never pruned the obsolete segment"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let segment_of = |d: &Path| -> Option<PathBuf> {
        let mut segs: Vec<PathBuf> = fs::read_dir(d)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| {
                let name = p.file_name().unwrap().to_string_lossy().into_owned();
                name.starts_with("wal-") && name.ends_with(".log")
            })
            .collect();
        segs.sort();
        segs.pop()
    };

    let mut ops = Vec::new();
    let mut boundaries = Vec::new();
    let mut segment = None;
    let mut running = base.clone(); // the live model; `base` stays frozen
    for i in 0..20u32 {
        let p = Point::new([rng.gen_range(0..64), rng.gen_range(0..64)]);
        let slot = if i % 5 == 4 { None } else { Some(i) };
        apply_acked(&store, &mut running, p, slot);
        ops.push((p, slot));
        let seg = segment_of(&shard_dir).expect("an open segment after an acked write");
        if boundaries.is_empty() {
            // Length before any swept op = segment header alone.
            boundaries.push(8);
        }
        boundaries.push(fs::metadata(&seg).unwrap().len());
        segment = Some(seg);
    }
    store.simulate_crash();
    SweepSetup {
        ops,
        boundaries,
        segment: segment.unwrap(),
        base,
    }
}

/// The model after replaying the first `k` swept ops onto the base.
fn model_after(setup: &SweepSetup, k: usize, curve: &ZCurve<2>) -> Model {
    let mut m = setup.base.clone();
    for &(p, slot) in &setup.ops[..k] {
        let key = curve.index_of(p);
        match slot {
            Some(v) => {
                m.insert(key, (p, v));
            }
            None => {
                m.remove(&key);
            }
        }
    }
    m
}

fn truncation_sweep(with_flush: bool) {
    let tag = if with_flush { "sweep-flush" } else { "sweep" };
    let tmp = TempDir::new(tag);
    let setup = sweep_setup(tmp.path(), with_flush);
    let c = curve();
    let full = fs::read(&setup.segment).unwrap();
    assert_eq!(
        *setup.boundaries.last().unwrap(),
        full.len() as u64,
        "boundaries must track the segment length"
    );

    let scratch = TempDir::new(&format!("{tag}-scratch"));
    for cut in 0..=full.len() {
        let _ = fs::remove_dir_all(scratch.path());
        copy_dir(tmp.path(), scratch.path());
        let seg = scratch
            .path()
            .join(setup.segment.strip_prefix(tmp.path()).unwrap());
        fs::write(&seg, &full[..cut]).unwrap();

        // Exactly the ops whose final frame byte is inside the prefix
        // are recovered; the remainder is a torn tail.
        let k = setup
            .boundaries
            .iter()
            .rposition(|&b| b <= cut as u64)
            .unwrap_or(0);
        let expect = model_after(&setup, k, &c);
        let store = reopen(scratch.path(), 1, 1024)
            .unwrap_or_else(|e| panic!("truncation at {cut} must recover, got {e}"));
        assert_eq!(
            state_of(&store),
            model_state(&expect),
            "state after truncation at byte {cut} (acked prefix = {k} ops)"
        );
        let stats = store.recovery_stats().unwrap();
        // Below the 8-byte header the whole stub is torn; past it, the
        // tail after the last complete frame is.
        let torn = if (cut as u64) < setup.boundaries[0] {
            cut as u64
        } else {
            cut as u64 - setup.boundaries[k]
        };
        assert_eq!(
            stats.torn_tail_bytes, torn,
            "torn-tail accounting at byte {cut}"
        );
    }
}

#[test]
fn recovery_survives_truncation_at_every_byte() {
    truncation_sweep(false);
}

#[test]
fn recovery_survives_truncation_at_every_byte_after_flush() {
    truncation_sweep(true);
}

#[test]
fn bit_flips_never_panic_and_never_invent_state() {
    let tmp = TempDir::new("flips");
    let setup = sweep_setup(tmp.path(), false);
    let c = curve();
    let full = fs::read(&setup.segment).unwrap();
    let all_prefixes: Vec<Vec<(CurveIndex, Point<2>, u32)>> = (0..=setup.ops.len())
        .map(|k| model_state(&model_after(&setup, k, &c)))
        .collect();

    let scratch = TempDir::new("flips-scratch");
    for off in 0..full.len() {
        let _ = fs::remove_dir_all(scratch.path());
        copy_dir(tmp.path(), scratch.path());
        let seg = scratch
            .path()
            .join(setup.segment.strip_prefix(tmp.path()).unwrap());
        let mut bad = full.clone();
        bad[off] ^= 1 << (off % 8);
        fs::write(&seg, &bad).unwrap();

        match reopen(scratch.path(), 1, 1024) {
            // Damage under acked data must be a *typed* corruption
            // error, with the path pointing at the log.
            Err(WalError::Corrupt { path, .. }) => {
                assert!(
                    path.to_string_lossy().contains("wal-"),
                    "corruption must name the damaged segment, got {path:?}"
                );
            }
            Err(other) => panic!("flip at {off}: unexpected error {other}"),
            // A flip that lands in the final frame (or mimics a torn
            // tail) may legally truncate — but the result must be an
            // exact prefix of the acked stream, never invented state.
            Ok(store) => {
                let got = state_of(&store);
                assert!(
                    all_prefixes.contains(&got),
                    "flip at {off}: recovered state is not a prefix of the acked stream"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Batched frames (WAL frame coalescing)
// ---------------------------------------------------------------------

/// Runs a single-shard batched workload, each batch acked through
/// [`ShardedSfcStore::try_apply_batch`] so it lands as exactly one
/// coalesced multi-record frame (the batches are far below the frame
/// body limit). Records the segment length after each batch — batch
/// *frame* boundaries this time, not per-record ones.
struct BatchSweepSetup {
    batches: Vec<Vec<(Point<2>, Option<u32>)>>,
    /// `boundaries[i]` = segment length after `i` acked batches.
    boundaries: Vec<u64>,
    segment: PathBuf,
}

fn batched_sweep_setup(dir: &Path) -> BatchSweepSetup {
    let mut rng = test_rng(0xBA7C4);
    let store = reopen(dir, 1, 1024).unwrap();
    let shard_dir = dir.join("shard0");
    let segment_of = |d: &Path| -> Option<PathBuf> {
        let mut segs: Vec<PathBuf> = fs::read_dir(d)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| {
                let name = p.file_name().unwrap().to_string_lossy().into_owned();
                name.starts_with("wal-") && name.ends_with(".log")
            })
            .collect();
        segs.sort();
        segs.pop()
    };

    let mut batches = Vec::new();
    let mut boundaries = vec![8u64]; // bare segment header
    let mut segment = None;
    for b in 0..12u32 {
        let len = rng.gen_range(1..=8u32); // includes the 1-record (v1) frame
        let mut batch = Vec::new();
        let mut ops: Vec<BatchOp<2, u32>> = Vec::new();
        for i in 0..len {
            let p = Point::new([rng.gen_range(0..64), rng.gen_range(0..64)]);
            let slot = if (b + i) % 5 == 4 {
                None
            } else {
                Some(b * 100 + i)
            };
            batch.push((p, slot));
            ops.push(match slot {
                Some(v) => BatchOp::Insert(p, v),
                None => BatchOp::Delete(p),
            });
        }
        store.try_apply_batch(&ops).expect("acked batch");
        batches.push(batch);
        let seg = segment_of(&shard_dir).expect("an open segment after an acked batch");
        boundaries.push(fs::metadata(&seg).unwrap().len());
        segment = Some(seg);
    }
    store.simulate_crash();
    BatchSweepSetup {
        batches,
        boundaries,
        segment: segment.unwrap(),
    }
}

/// The model after replaying the first `k` acked batches. Within a
/// batch the ops apply in submission order (the store sorts each shard
/// slice *stably*, so the last write to a cell still wins).
fn model_after_batches(batches: &[Vec<(Point<2>, Option<u32>)>], k: usize, c: &ZCurve<2>) -> Model {
    let mut m = Model::new();
    for batch in &batches[..k] {
        for &(p, slot) in batch {
            let key = c.index_of(p);
            match slot {
                Some(v) => {
                    m.insert(key, (p, v));
                }
                None => {
                    m.remove(&key);
                }
            }
        }
    }
    m
}

/// The batched analogue of the headline sweep: truncating a log of
/// coalesced frames at **every byte offset** must recover a
/// whole-batch prefix — a frame sharing one checksum across its
/// records replays all-or-nothing, never a partial batch.
#[test]
fn batched_truncation_at_every_byte_recovers_whole_batches() {
    let tmp = TempDir::new("batch-sweep");
    let setup = batched_sweep_setup(tmp.path());
    let c = curve();
    let full = fs::read(&setup.segment).unwrap();
    assert_eq!(
        *setup.boundaries.last().unwrap(),
        full.len() as u64,
        "boundaries must track the segment length"
    );

    let scratch = TempDir::new("batch-sweep-scratch");
    for cut in 0..=full.len() {
        let _ = fs::remove_dir_all(scratch.path());
        copy_dir(tmp.path(), scratch.path());
        let seg = scratch
            .path()
            .join(setup.segment.strip_prefix(tmp.path()).unwrap());
        fs::write(&seg, &full[..cut]).unwrap();

        let k = setup
            .boundaries
            .iter()
            .rposition(|&b| b <= cut as u64)
            .unwrap_or(0);
        let expect = model_after_batches(&setup.batches, k, &c);
        let store = reopen(scratch.path(), 1, 1024)
            .unwrap_or_else(|e| panic!("truncation at {cut} must recover, got {e}"));
        assert_eq!(
            state_of(&store),
            model_state(&expect),
            "state after truncation at byte {cut} (acked prefix = {k} whole batches)"
        );
        let stats = store.recovery_stats().unwrap();
        let torn = if (cut as u64) < setup.boundaries[0] {
            cut as u64
        } else {
            cut as u64 - setup.boundaries[k]
        };
        assert_eq!(
            stats.torn_tail_bytes, torn,
            "torn-tail accounting at byte {cut}"
        );
    }
}

/// Crash atomicity of a cross-shard batch is **per shard frame**: when
/// one shard's log is torn mid-frame, that shard rolls back to its last
/// whole batch slice while every other shard keeps its full stream —
/// never a partially applied slice on any shard.
#[test]
fn torn_batch_frame_is_atomic_per_shard() {
    let tmp = TempDir::new("batch-atomic");
    const PARTS: usize = 4;
    const BATCHES: u32 = 6;
    const PER_BATCH: u32 = 24;

    // Insert-only: a cell always routes to the same shard, so the
    // surviving value of any cell is determined by that one shard's
    // recovered prefix — replaying batches in order below computes it.
    let mut shard0_boundaries = vec![8u64];
    let mut routed: Vec<Vec<(usize, Point<2>, u32)>> = Vec::new(); // per batch: (shard, p, v)
    let segment;
    {
        let store = reopen(tmp.path(), PARTS, 1024).unwrap();
        let part = store.partition();
        let shard0_dir = tmp.path().join("shard0");
        let seg_of = || -> PathBuf {
            let mut segs: Vec<PathBuf> = fs::read_dir(&shard0_dir)
                .unwrap()
                .map(|e| e.unwrap().path())
                .filter(|p| {
                    let name = p.file_name().unwrap().to_string_lossy().into_owned();
                    name.starts_with("wal-") && name.ends_with(".log")
                })
                .collect();
            segs.sort();
            segs.pop().expect("shard0 segment")
        };
        let mut rng = test_rng(0xA70);
        for b in 0..BATCHES {
            let mut ops = Vec::new();
            let mut batch = Vec::new();
            for i in 0..PER_BATCH {
                let p = Point::new([rng.gen_range(0..64), rng.gen_range(0..64)]);
                let v = b * 1000 + i;
                ops.push(BatchOp::Insert(p, v));
                batch.push((part.part_of(store.curve().index_of(p)), p, v));
            }
            store.try_apply_batch(&ops).expect("acked batch");
            shard0_boundaries.push(fs::metadata(seg_of()).unwrap().len());
            routed.push(batch);
        }
        // Uniform points over the grid must spread across every shard —
        // a torn shard0 then genuinely diverges from the others.
        for j in 0..PARTS {
            assert!(
                routed.iter().flatten().any(|&(s, _, _)| s == j),
                "workload must route records to shard {j}"
            );
        }
        segment = seg_of();
        store.simulate_crash();
    }

    let full = fs::read(&segment).unwrap();
    let c = curve();
    let scratch = TempDir::new("batch-atomic-scratch");
    for cut in 0..=full.len() {
        let _ = fs::remove_dir_all(scratch.path());
        copy_dir(tmp.path(), scratch.path());
        let seg = scratch
            .path()
            .join(segment.strip_prefix(tmp.path()).unwrap());
        fs::write(&seg, &full[..cut]).unwrap();

        // Shard 0 keeps its first `k` whole batch slices; every other
        // shard keeps everything.
        let k = shard0_boundaries
            .iter()
            .rposition(|&b| b <= cut as u64)
            .unwrap_or(0);
        let mut expect = Model::new();
        for (b, batch) in routed.iter().enumerate() {
            for &(j, p, v) in batch {
                if j == 0 && b >= k {
                    continue;
                }
                expect.insert(c.index_of(p), (p, v));
            }
        }
        let store = reopen(scratch.path(), PARTS, 1024)
            .unwrap_or_else(|e| panic!("truncation at {cut} must recover, got {e}"));
        assert_eq!(
            state_of(&store),
            model_state(&expect),
            "per-shard atomicity after truncating shard0 at byte {cut} \
             (shard0 prefix = {k} batch slices)"
        );
    }
}

#[test]
fn corrupt_run_file_is_a_typed_error() {
    let tmp = TempDir::new("run-rot");
    {
        let store = reopen(tmp.path(), 1, 8).unwrap();
        for i in 0..40u32 {
            store.try_insert(Point::new([i % 64, i / 8]), i).unwrap();
        }
        store.flush();
    }
    // Flip one payload byte inside the (now referenced) run file.
    let shard_dir = tmp.path().join("shard0");
    let run = fs::read_dir(&shard_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "run"))
        .expect("a persisted run file");
    let mut bytes = fs::read(&run).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&run, &bytes).unwrap();
    match reopen(tmp.path(), 1, 8) {
        Err(WalError::Corrupt { .. }) => {}
        other => panic!("corrupt run must fail typed, got {other:?}"),
    }
    // A missing referenced run is equally fatal and equally typed.
    fs::remove_file(&run).unwrap();
    match reopen(tmp.path(), 1, 8) {
        Err(WalError::Corrupt { .. }) => {}
        other => panic!("missing run must fail typed, got {other:?}"),
    }
}

#[test]
fn shard_count_mismatch_is_rejected() {
    let tmp = TempDir::new("mismatch");
    {
        let store = reopen(tmp.path(), 2, 64).unwrap();
        store.try_insert(Point::new([1, 1]), 7).unwrap();
    }
    match reopen(tmp.path(), 3, 64) {
        Err(WalError::Mismatch { .. }) => {}
        other => panic!("shard-count mismatch must fail typed, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Rollback, pruning, multi-shard
// ---------------------------------------------------------------------

#[test]
fn unreferenced_generation_rolls_back_and_sweeps_orphans() {
    let tmp = TempDir::new("rollback");
    let mut model1 = Model::new();
    {
        let store = reopen(tmp.path(), 1, 32).unwrap();
        let mut rng = test_rng(0xB0B);
        for i in 0..60u32 {
            let p = Point::new([rng.gen_range(0..64), rng.gen_range(0..64)]);
            apply_acked(&store, &mut model1, p, Some(i));
        }
        store.flush();
    }
    // Freeze generation 1, then advance the original to generation 2.
    let frozen = TempDir::new("rollback-frozen");
    copy_dir(tmp.path(), frozen.path());
    {
        let store = reopen(tmp.path(), 1, 32).unwrap();
        let mut model2 = model1.clone();
        let mut rng = test_rng(0xB0C);
        for i in 0..60u32 {
            let p = Point::new([rng.gen_range(0..64), rng.gen_range(0..64)]);
            apply_acked(&store, &mut model2, p, Some(100 + i));
        }
        store.flush();
    }
    // Drop generation 2's files into the frozen copy *without* its
    // manifest — exactly what a crash before the manifest rename leaves
    // behind. Recovery must roll back to generation 1 and sweep the
    // debris.
    let src = tmp.path().join("shard0");
    let dst = frozen.path().join("shard0");
    for entry in fs::read_dir(&src).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        let to = dst.join(&name);
        if !to.exists() {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
    let store = reopen(frozen.path(), 1, 32).unwrap();
    assert_matches_model(&store, &model1);
    assert!(
        store.recovery_stats().unwrap().orphans_removed > 0,
        "generation-2 debris must be swept"
    );
}

#[test]
fn flushes_prune_obsolete_segments() {
    let tmp = TempDir::new("prune");
    let mut model = Model::new();
    let config = WalConfig::new(tmp.path()).segment_bytes(1); // floored to 4 KiB
    {
        let store = Store::open_durable(curve(), 1, 256, config.clone()).unwrap();
        let mut rng = test_rng(0x9);
        // Enough synchronous writes to rotate through several segments,
        // flushing as we go so earlier segments become wholly obsolete.
        for round in 0..6 {
            for i in 0..300u32 {
                let p = Point::new([rng.gen_range(0..64), rng.gen_range(0..64)]);
                apply_acked(&store, &mut model, p, Some(round * 1000 + i));
            }
            store.flush();
        }
    }
    let wal_bytes: u64 = fs::read_dir(tmp.path().join("shard0"))
        .unwrap()
        .map(|e| e.unwrap())
        .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
        .map(|e| e.metadata().unwrap().len())
        .sum();
    // 1800 frames at ~25 bytes each is ~45 KiB of raw log; pruning must
    // have reclaimed the flushed majority.
    assert!(
        wal_bytes < 16 << 10,
        "flushed segments must be pruned, {wal_bytes} bytes remain"
    );
    let store = Store::open_durable(curve(), 1, 256, config).unwrap();
    assert_matches_model(&store, &model);
}

#[test]
fn multi_shard_crash_recovery_with_flushes() {
    let tmp = TempDir::new("multi-shard");
    let mut model = Model::new();
    {
        let store = reopen(tmp.path(), 4, 16).unwrap();
        let mut rng = test_rng(0x4A11);
        for i in 0..500u32 {
            let p = Point::new([rng.gen_range(0..64), rng.gen_range(0..64)]);
            let slot = if i % 6 == 5 { None } else { Some(i) };
            apply_acked(&store, &mut model, p, slot);
            if i % 120 == 119 {
                store.flush();
            }
        }
        store.simulate_crash();
    }
    let store = reopen(tmp.path(), 4, 16).unwrap();
    assert_matches_model(&store, &model);
}

#[test]
fn durable_multi_writer_crash_consistency() {
    let tmp = TempDir::new("writers");
    let grid: Grid<2> = Grid::from_side(64).unwrap();
    let mut model = Model::new();
    {
        let store = Arc::new(reopen(tmp.path(), 4, 64).unwrap());
        // Four writers on disjoint quadrants: every write acked, so the
        // final state is interleaving-independent.
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let mut rng = test_rng(0xD00D + u64::from(w));
                    let half = (grid.side() / 2) as u32;
                    let (ox, oy) = [(0, 0), (half, 0), (0, half), (half, half)][w as usize];
                    for i in 0..400u32 {
                        let p =
                            Point::new([ox + rng.gen_range(0..half), oy + rng.gen_range(0..half)]);
                        if i % 7 == 6 {
                            store.try_delete(p).unwrap();
                        } else {
                            store.try_insert(p, w * 1_000_000 + i).unwrap();
                        }
                    }
                });
            }
        });
        // Sequential replay of the same per-writer streams.
        let c = curve();
        for w in 0..4u32 {
            let mut rng = test_rng(0xD00D + u64::from(w));
            let half = (grid.side() / 2) as u32;
            let (ox, oy) = [(0, 0), (half, 0), (0, half), (half, half)][w as usize];
            for i in 0..400u32 {
                let p = Point::new([ox + rng.gen_range(0..half), oy + rng.gen_range(0..half)]);
                let key = c.index_of(p);
                if i % 7 == 6 {
                    model.remove(&key);
                } else {
                    model.insert(key, (p, w * 1_000_000 + i));
                }
            }
        }
        Arc::try_unwrap(store)
            .expect("writers joined")
            .simulate_crash();
    }
    let store = reopen(tmp.path(), 4, 64).unwrap();
    assert_matches_model(&store, &model);
}

#[test]
fn rebalance_boundaries_survive_crash() {
    let tmp = TempDir::new("rebalance");
    let mut model = Model::new();
    let boundaries;
    {
        let store = reopen(tmp.path(), 4, 32).unwrap();
        let mut rng = test_rng(0xBA17);
        // Skewed traffic into one corner, then rebalance.
        for i in 0..400u32 {
            let p = Point::new([rng.gen_range(0..16), rng.gen_range(0..16)]);
            apply_acked(&store, &mut model, p, Some(i));
        }
        assert!(store.rebalance(0.01), "skew must move boundaries");
        boundaries = store.partition().boundaries().to_vec();
        // More acked writes after the rebalance.
        for i in 0..100u32 {
            let p = Point::new([rng.gen_range(0..64), rng.gen_range(0..64)]);
            apply_acked(&store, &mut model, p, Some(1000 + i));
        }
        store.simulate_crash();
    }
    let store = reopen(tmp.path(), 4, 32).unwrap();
    assert_eq!(
        store.partition().boundaries(),
        &boundaries[..],
        "committed rebalance boundaries must persist"
    );
    assert_matches_model(&store, &model);
}

// ---------------------------------------------------------------------
// Property-based interleaving
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum DurableOp {
    Insert(u32, u32, u32),
    Delete(u32, u32),
    /// An acked cross-shard batch, expanded deterministically from the
    /// seed by [`batch_ops`].
    Batch(u64),
    Flush,
    CrashAndReopen,
}

/// The op stream a [`DurableOp::Batch`] seed expands to: a mixed
/// insert/delete batch, including duplicate cells (last write wins).
fn batch_ops(seed: u64) -> Vec<(Point<2>, Option<u32>)> {
    let mut rng = test_rng(seed);
    let len = rng.gen_range(1..=12usize);
    (0..len)
        .map(|i| {
            let p = Point::new([rng.gen_range(0..64), rng.gen_range(0..64)]);
            let slot = if rng.gen_range(0..4u32) == 3 {
                None
            } else {
                Some(seed as u32 ^ i as u32)
            };
            (p, slot)
        })
        .collect()
}

fn durable_ops(seed: u64, len: usize) -> Vec<DurableOp> {
    let mut rng = test_rng(seed);
    (0..len)
        .map(|i| {
            let x = rng.gen_range(0..64);
            let y = rng.gen_range(0..64);
            match rng.gen_range(0..14u32) {
                0..=6 => DurableOp::Insert(x, y, i as u32),
                7..=9 => DurableOp::Delete(x, y),
                10 => DurableOp::Flush,
                11 => DurableOp::CrashAndReopen,
                12..=13 => DurableOp::Batch(seed.wrapping_add(i as u64)),
                _ => unreachable!(),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random interleavings of acked writes, flushes, crashes, and
    /// reopens: after every crash the reopened store must equal the
    /// sequential model (every op was acked, so nothing may be lost),
    /// and the final state must too.
    #[test]
    fn durable_store_matches_model_across_crashes(
        seed in any::<u64>(),
        parts in 1usize..5,
        cap in 4usize..64,
    ) {
        let tmp = TempDir::new(&format!("prop-{seed:x}-{parts}-{cap}"));
        let mut model = Model::new();
        let mut store = Some(reopen(tmp.path(), parts, cap).unwrap());
        for op in durable_ops(seed, 120) {
            let s = store.as_ref().unwrap();
            match op {
                DurableOp::Insert(x, y, v) => {
                    apply_acked(s, &mut model, Point::new([x, y]), Some(v));
                }
                DurableOp::Delete(x, y) => {
                    apply_acked(s, &mut model, Point::new([x, y]), None);
                }
                DurableOp::Batch(batch_seed) => {
                    let batch = batch_ops(batch_seed);
                    let ops: Vec<BatchOp<2, u32>> = batch
                        .iter()
                        .map(|&(p, slot)| match slot {
                            Some(v) => BatchOp::Insert(p, v),
                            None => BatchOp::Delete(p),
                        })
                        .collect();
                    s.try_apply_batch(&ops).expect("acked batch");
                    for (p, slot) in batch {
                        let key = s.curve().index_of(p);
                        match slot {
                            Some(v) => {
                                model.insert(key, (p, v));
                            }
                            None => {
                                model.remove(&key);
                            }
                        }
                    }
                }
                DurableOp::Flush => s.flush(),
                DurableOp::CrashAndReopen => {
                    store.take().unwrap().simulate_crash();
                    let s = reopen(tmp.path(), parts, cap).unwrap();
                    assert_matches_model(&s, &model);
                    store = Some(s);
                }
            }
        }
        store.take().unwrap().simulate_crash();
        let s = reopen(tmp.path(), parts, cap).unwrap();
        assert_matches_model(&s, &model);
    }
}
