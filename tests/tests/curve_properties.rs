//! Property-based tests on curve invariants, spanning core + metrics.

use proptest::prelude::*;
use sfc_core::transform::{AxisPermuted, Reflected, Reversed};
use sfc_core::{CurveKind, Grid, PermutationCurve, Point, SpaceFillingCurve, ZCurve};
use sfc_metrics::nn_stretch::summarize;

proptest! {
    /// Round-trip bijectivity of every analytic family at random points.
    #[test]
    fn all_curves_roundtrip_d2(
        kind_idx in 0usize..5,
        x in 0u32..(1 << 8),
        y in 0u32..(1 << 8),
    ) {
        let kind = CurveKind::ALL[kind_idx];
        let curve = kind.build::<2>(8).unwrap();
        let p = Point::new([x, y]);
        let idx = curve.index_of(p);
        prop_assert!(idx < curve.grid().n());
        prop_assert_eq!(curve.point_of(idx), p);
    }

    /// Round-trip in 3-D.
    #[test]
    fn all_curves_roundtrip_d3(
        kind_idx in 0usize..5,
        coords in proptest::array::uniform3(0u32..(1 << 5)),
    ) {
        let kind = CurveKind::ALL[kind_idx];
        let curve = kind.build::<3>(5).unwrap();
        let p = Point::new(coords);
        prop_assert_eq!(curve.point_of(curve.index_of(p)), p);
    }

    /// The generalized triangle inequality (Lemma 1) holds for Δπ along
    /// arbitrary 3-point chains, for every curve family.
    #[test]
    fn lemma1_triangle_inequality(
        kind_idx in 0usize..5,
        a in proptest::array::uniform2(0u32..16),
        b in proptest::array::uniform2(0u32..16),
        c in proptest::array::uniform2(0u32..16),
    ) {
        let curve = CurveKind::ALL[kind_idx].build::<2>(4).unwrap();
        let (pa, pb, pc) = (Point::new(a), Point::new(b), Point::new(c));
        prop_assert!(
            curve.curve_distance(pa, pc)
                <= curve.curve_distance(pa, pb) + curve.curve_distance(pb, pc)
        );
    }

    /// Reversing a curve preserves every pairwise curve distance, hence
    /// every stretch metric (used by the paper implicitly: the metrics
    /// depend only on |π(α) − π(β)|).
    #[test]
    fn reversal_preserves_stretch(kind_idx in 0usize..5) {
        let curve = CurveKind::ALL[kind_idx].build::<2>(3).unwrap();
        let s = summarize(&curve);
        let r = summarize(&Reversed::new(&curve));
        prop_assert_eq!(s.davg_numerator, r.davg_numerator);
        prop_assert_eq!(s.dmax_sum, r.dmax_sum);
        prop_assert_eq!(s.edge_sum, r.edge_sum);
    }

    /// The paper's Section IV.B remark, verified: permuting the dimension
    /// order of the Z curve does not change any stretch metric.
    #[test]
    fn axis_permutation_of_z_preserves_stretch(swap in any::<bool>()) {
        let z = ZCurve::<2>::new(3).unwrap();
        let perm = if swap { [1usize, 0] } else { [0usize, 1] };
        let wrapped = AxisPermuted::new(z, perm).unwrap();
        let s = summarize(&z);
        let w = summarize(&wrapped);
        prop_assert_eq!(s.davg_numerator, w.davg_numerator);
        prop_assert_eq!(s.dmax_sum, w.dmax_sum);
        prop_assert_eq!(s.edge_sum, w.edge_sum);
        prop_assert_eq!(s.max_delta, w.max_delta);
    }

    /// Reflections are grid symmetries: all stretch metrics invariant.
    #[test]
    fn reflection_preserves_stretch(
        kind_idx in 0usize..5,
        flip in proptest::array::uniform2(any::<bool>()),
    ) {
        let curve = CurveKind::ALL[kind_idx].build::<2>(3).unwrap();
        let wrapped = Reflected::new(&curve, flip);
        let s = summarize(&curve);
        let w = summarize(&wrapped);
        prop_assert_eq!(s.davg_numerator, w.davg_numerator);
        prop_assert_eq!(s.dmax_sum, w.dmax_sum);
    }

    /// Random bijections: the Theorem 1 bound holds on every draw, and
    /// D^max dominates D^avg (Proposition 1's driver).
    #[test]
    fn random_bijections_respect_bounds(seed in any::<u64>()) {
        let mut rng = sfc_integration::test_rng(seed);
        let grid = Grid::<2>::new(2).unwrap();
        let curve = PermutationCurve::random(grid, &mut rng).unwrap();
        let s = summarize(&curve);
        let bound = sfc_metrics::bounds::thm1_nn_stretch_lower_bound(2, 2);
        prop_assert!(s.d_avg() >= bound - 1e-12);
        prop_assert!(s.d_max() >= s.d_avg() - 1e-12);
    }

    /// Swapping two positions of a permutation curve keeps it a bijection
    /// and only changes the stretch locally (sanity of the annealer's move
    /// set).
    #[test]
    fn swap_positions_preserves_bijectivity(i in 0u128..16, j in 0u128..16) {
        let grid = Grid::<2>::new(2).unwrap();
        let mut curve = PermutationCurve::identity(grid).unwrap();
        curve.swap_positions(i, j);
        prop_assert!(curve.validate_bijection().is_ok());
    }

    /// Lemma 2 as a property: S_A' is invariant across random bijections.
    #[test]
    fn lemma2_invariance(seed in any::<u64>()) {
        let mut rng = sfc_integration::test_rng(seed);
        let grid = Grid::<2>::new(2).unwrap();
        let curve = PermutationCurve::random(grid, &mut rng).unwrap();
        let measured = sfc_metrics::all_pairs::sa_prime_sum(&curve);
        prop_assert_eq!(measured, sfc_metrics::bounds::lemma2_sa_prime(16));
    }
}

/// Hilbert continuity across every dimension/order combination we ship —
/// not a proptest (exhaustive walk), but an integration-level guarantee.
#[test]
fn hilbert_is_continuous_everywhere() {
    macro_rules! check {
        ($d:literal, $k:expr) => {
            let h = sfc_core::HilbertCurve::<$d>::new($k).unwrap();
            assert!(h.is_continuous(), "hilbert d={} k={}", $d, $k);
        };
    }
    check!(2, 6);
    check!(3, 4);
    check!(4, 2);
    check!(5, 2);
    check!(6, 1);
}
