//! Minimal demo of exact-cell lookups through the SoA index.

use rand::SeedableRng;
use sfc::index::SfcIndex;
use sfc::prelude::*;

fn main() {
    let grid = Grid::<2>::new(6).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
    let mut records: Vec<(Point<2>, u32)> = (0..2_000)
        .map(|i| (grid.random_cell(&mut rng), i))
        .collect();
    let target = Point::new([17, 42]);
    records.push((target, 9_001));
    records.push((target, 9_002));
    let index = SfcIndex::build(ZCurve::over(grid), records);
    let hits = index.point_lookup(target);
    println!("{} records at {target}:", hits.len());
    for e in hits {
        println!("  payload {} (key {})", e.payload, e.key);
    }
    println!(
        "records at (0, 0): {}",
        index.point_lookup(Point::new([0, 0])).len()
    );
}
