//! SFC-ordered Barnes–Hut N-body simulation — the paper's first motivating
//! application (Warren & Salmon's hashed oct-tree).
//!
//! Bodies are sorted by Morton key, a tree is built over the sorted array,
//! gravity is evaluated with the opening-angle approximation, and the
//! system is integrated with leapfrog while we watch the energy drift and
//! the work saved vs direct summation.
//!
//! ```text
//! cargo run --release -p sfc --example nbody_sim
//! ```

use rand::SeedableRng;
use sfc::nbody::body::{sample_bodies, Distribution};
use sfc::nbody::gravity::{barnes_hut_forces_par, direct_forces_par, mean_relative_error};
use sfc::nbody::sim::{leapfrog_step, total_energy};
use sfc::nbody::{Body, Tree};

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1993);
    let n = 5_000;
    let mut bodies: Vec<Body<2>> = sample_bodies(
        Distribution::Clustered {
            clusters: 4,
            sigma: 0.06,
        },
        n,
        &mut rng,
    );
    for b in bodies.iter_mut() {
        b.mass = 1.0 / n as f64;
    }
    let softening = 5e-3;
    println!("{n} bodies, 4 clusters, total mass 1, softening {softening}\n");

    // One-shot accuracy/work comparison.
    let tree = Tree::build(bodies.clone(), 10, 8);
    let t0 = std::time::Instant::now();
    let direct = direct_forces_par(tree.bodies(), softening);
    let t_direct = t0.elapsed();
    println!(
        "direct summation: {} interactions in {t_direct:.2?}",
        n * (n - 1)
    );
    for theta in [0.3, 0.6, 1.0] {
        let t0 = std::time::Instant::now();
        let (forces, stats) = barnes_hut_forces_par(&tree, theta, softening);
        let dt = t0.elapsed();
        println!(
            "barnes-hut θ={theta}: {:>9} interactions in {dt:>8.2?}  (err {:.2e})",
            stats.total(),
            mean_relative_error(&forces, &direct)
        );
    }

    // Short integration with per-step resort + rebuild.
    println!("\nintegrating 200 steps (dt = 1e-4, θ = 0.6, rebuild every step)…");
    let e0 = total_energy(&bodies, softening);
    let wall = std::time::Instant::now();
    for step in 0..200 {
        leapfrog_step(&mut bodies, 1e-4, |b| {
            let (tree, order) = Tree::build_tracked(b, 10, 8);
            let sorted = barnes_hut_forces_par(&tree, 0.6, softening).0;
            let mut forces = vec![[0.0; 2]; b.len()];
            for (s, &orig) in order.iter().enumerate() {
                forces[orig] = sorted[s];
            }
            forces
        });
        if (step + 1) % 50 == 0 {
            let e = total_energy(&bodies, softening);
            println!(
                "  step {:>3}: energy {:+.6}  (rel. drift {:.2e})",
                step + 1,
                e,
                (e - e0).abs() / e0.abs()
            );
        }
    }
    println!("done in {:.2?}", wall.elapsed());
}
