//! Quickstart: build a curve, measure its stretch, compare to the paper's
//! bounds.
//!
//! ```text
//! cargo run --release -p sfc --example quickstart
//! ```

use sfc::metrics::{bounds, nn_stretch};
use sfc::prelude::*;

fn main() {
    // The universe: a 256×256 grid (d = 2, k = 8, n = 65 536 cells).
    let k = 8;
    let z = ZCurve::<2>::new(k).expect("valid grid");
    println!(
        "universe: {}×{} = {} cells",
        z.grid().side(),
        z.grid().side(),
        z.grid().n()
    );

    // Where does the cell (100, 200) land on the curve, and what cell sits
    // at position 12345?
    let p = Point::new([100, 200]);
    println!("Z({p}) = {}", z.index_of(p));
    println!("Z⁻¹(12345) = {}", z.point_of(12345));

    // Exact average nearest-neighbor stretch (Definition 2 of the paper):
    // how far apart, on average, does the curve pull grid neighbors?
    let summary = nn_stretch::summarize_par(&z);
    println!("\nD^avg(Z) = {:.3}", summary.d_avg());
    println!("D^max(Z) = {:.3}", summary.d_max());

    // Theorem 1: *no* curve — however clever — can beat this bound:
    let bound = bounds::thm1_nn_stretch_lower_bound(k, 2);
    println!("Theorem-1 lower bound for any SFC: {bound:.3}");

    // Theorem 2: the Z curve is within 1.5× of that bound:
    println!(
        "Z optimality gap: {:.4} (→ 1.5 as n → ∞)",
        summary.d_avg() / bound
    );

    // And the trivial row-major curve does *just as well* on average
    // (Theorem 3) — the paper's surprise:
    let simple = nn_stretch::summarize_par(&SimpleCurve::<2>::new(k).unwrap());
    println!(
        "\nD^avg(simple) = {:.3} — same asymptote as Z ({:.3})",
        simple.d_avg(),
        bounds::nn_stretch_asymptote(k, 2),
    );

    // … but not on the *maximum* stretch (Proposition 2): the simple curve
    // always has one neighbor a full n^{1−1/d} away.
    println!(
        "D^max(simple) = {} = n^(1-1/d), exactly (Prop. 2)",
        simple.d_max()
    );
}
