//! Parallel domain decomposition with space filling curves — the paper's
//! scientific-computing motivation, end to end.
//!
//! A clustered workload (think adaptive mesh refinement or particle
//! clusters) is partitioned into `p` parts by cutting each curve's 1-D
//! order; we report load imbalance and communication cost per curve.
//!
//! ```text
//! cargo run --release -p sfc --example domain_decomposition
//! ```

use rand::SeedableRng;
use sfc::metrics::report::{fmt_f64, Table};
use sfc::partition::partitioner::partition_min_bottleneck;
use sfc::partition::{partition_greedy, quality};
use sfc::prelude::*;

fn main() {
    let grid = Grid::<2>::new(6).unwrap(); // 64×64 = 4096 cells
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2012);
    let weights = WeightedGrid::generate(
        grid,
        Workload::GaussianClusters {
            count: 5,
            sigma: 6.0,
        },
        &mut rng,
    );
    println!(
        "64×64 grid, clustered load (5 Gaussian blobs), total weight {:.1}\n",
        weights.total()
    );

    for p in [8usize, 32] {
        let mut table = Table::new(
            format!("p = {p} parts"),
            &["curve", "strategy", "imbalance", "edge cut", "comm volume"],
        );
        for kind in CurveKind::ALL {
            let curve = kind.build::<2>(6).unwrap();
            for (strategy, part) in [
                ("greedy", partition_greedy(&curve, &weights, p)),
                (
                    "min-bottleneck",
                    partition_min_bottleneck(&curve, &weights, p, 1e-9),
                ),
            ] {
                let q = quality::evaluate_par(&curve, &weights, &part);
                table.push_row(vec![
                    kind.name().to_string(),
                    strategy.to_string(),
                    fmt_f64(q.imbalance, 4),
                    q.edge_cut.to_string(),
                    q.comm_volume.to_string(),
                ]);
            }
        }
        println!("{}", table.render_text());
    }

    println!(
        "Reading: all curves balance load equally well (the 1-D cut does that);\n\
         the *communication* columns are where proximity preservation pays —\n\
         compact curves (Hilbert, Z) cut far fewer neighbor edges than the\n\
         slab-producing simple curve at high part counts."
    );
}
