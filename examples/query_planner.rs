//! The adaptive box-query planner, live on a skewed dataset.
//!
//! Builds a multi-run `SfcStore` whose records cluster heavily in one
//! corner of a 1024×1024 grid (plus a uniform background), then runs box
//! queries of very different shapes and prints, for each:
//!
//! * the plan — decomposed interval count (or "none": BIGMIN everywhere)
//!   and the per-level intervals / bigmin / pruned choices;
//! * the executed [`QueryStats`], including how many zone-map blocks were
//!   pruned from their summaries versus actually scanned;
//! * the same query through the pre-zone-map plain scan, so the saved
//!   work is visible side by side.
//!
//! Run with: `cargo run --release -p sfc --example query_planner`

use rand::{Rng, SeedableRng};
use sfc::index::{BoxRegion, QueryStats};
use sfc::prelude::*;
use sfc::store::SfcStore;

fn fmt_stats(s: &QueryStats) -> String {
    format!(
        "seeks {:>5} | scanned {:>6} | reported {:>5} | blocks scanned {:>4} pruned {:>4} decoded {:>4}",
        s.seeks, s.scanned, s.reported, s.blocks_scanned, s.blocks_pruned, s.blocks_decoded
    )
}

fn main() {
    let grid = Grid::<2>::new(10).unwrap(); // 1024×1024
    let z = ZCurve::over(grid);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);

    // Skewed workload: 70% of records live in the [0,256)² corner.
    let records: Vec<(Point<2>, u32)> = (0..200_000u32)
        .map(|i| {
            let p = if rng.gen_range(0..10u32) < 7 {
                Point::new([rng.gen_range(0..256u32), rng.gen_range(0..256u32)])
            } else {
                grid.random_cell(&mut rng)
            };
            (p, i)
        })
        .collect();
    let mut store = SfcStore::bulk_load(z, records);
    // Streamed churn leaves a stack of smaller runs over the bottom one.
    for i in 0..30_000u32 {
        let p = grid.random_cell(&mut rng);
        if i % 8 == 7 {
            store.delete(p);
        } else {
            store.insert(p, 1_000_000 + i);
        }
    }
    println!(
        "store: {} live records, runs {:?}, memtable {}",
        store.len(),
        store.run_lens(),
        store.memtable_len()
    );
    // Per-level compressed footprint: bytes each run's packed blocks and
    // dense payload column occupy, and what that costs per stored slot.
    for ((len, bytes), level) in store.run_lens().iter().zip(store.run_heap_bytes()).zip(0..) {
        println!(
            "  level {level}: {len:>7} slots in {bytes:>8} bytes ({:.2} B/slot)",
            bytes as f64 / *len as f64
        );
    }

    let queries = [
        (
            "tiny box in the dense corner (decomposes)",
            BoxRegion::new(Point::new([40, 40]), Point::new([47, 47])),
        ),
        (
            "selective box in the dense corner",
            BoxRegion::new(Point::new([40, 40]), Point::new([71, 71])),
        ),
        (
            "selective box in the sparse region",
            BoxRegion::new(Point::new([700, 700]), Point::new([731, 731])),
        ),
        (
            "large box (over the decomposition cutoff)",
            BoxRegion::new(Point::new([100, 100]), Point::new([611, 611])),
        ),
        (
            "box outside the cluster's AABB rows",
            BoxRegion::new(Point::new([980, 0]), Point::new([1023, 40])),
        ),
    ];

    for (label, b) in &queries {
        println!(
            "\n=== {label}: {:?}..{:?} (volume {}) ===",
            b.lo(),
            b.hi(),
            b.volume()
        );
        let plan = store.plan_box_query(b);
        match plan.interval_count() {
            Some(n) => println!("plan: decomposed into {n} curve intervals"),
            None => println!("plan: no decomposition (BIGMIN jumps only)"),
        }
        if let Some(mem) = plan.memtable {
            println!("  memtable          -> {mem}");
        }
        for (strategy, len) in plan.runs.iter().zip(store.run_lens()) {
            println!("  run of {len:>7} slots -> {strategy}");
        }
        let (hits, stats) = store.query_box(b);
        let (plain_hits, plain) = store.query_box_intervals_plain(b);
        assert_eq!(
            hits.len(),
            plain_hits.len(),
            "planner must match plain scan"
        );
        println!("planner: {}", fmt_stats(&stats));
        println!("plain:   {}", fmt_stats(&plain));
    }

    // kNN: the dead-block skips and AABB distance bounds show up in the
    // block counters.
    println!("\n=== kNN (k = 10) ===");
    for q in [Point::new([128, 128]), Point::new([900, 500])] {
        let (hits, stats) = store.knn(q, 10, 16);
        let (plain_hits, plain) = store.knn_plain(q, 10, 16);
        assert_eq!(hits.len(), plain_hits.len());
        println!("q = {q}:");
        println!("  zone:  {}", fmt_stats(&stats));
        println!("  plain: {}", fmt_stats(&plain));
    }
}
