//! The concurrent store engine end to end: W writer threads stream
//! upserts into a `ShardedSfcStore` through its `&self` API (each writer
//! confined to its own curve range, so the per-shard write locks never
//! contend), while snapshot readers freeze and verify consistent views of
//! the moving state. Prints per-writer and per-shard throughput plus the
//! reader's observations.
//!
//! Every verification is real: snapshots must be internally consistent
//! (sorted unique keys, box queries equal to filtered iteration) and the
//! final store must match a sequential replay of the same op streams.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use rand::{Rng, SeedableRng};
use sfc::prelude::*;
use sfc::store::SfcStore;

const WRITERS: usize = 4;
const OPS_PER_WRITER: usize = 100_000;
const GRID_K: u32 = 9; // 512×512
const MEMTABLE_CAP: usize = 2048;

/// Writer `w`'s deterministic op stream, confined to one vertical strip of
/// the grid (strips are curve-range-disjoint enough for the uniform
/// partition that cross-shard contention stays near zero).
fn ops_of(grid: Grid<2>, w: usize) -> Vec<(Point<2>, u32)> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(900 + w as u64);
    let quadrant = (grid.side() / 2) as u32;
    let (ox, oy) = [(0, 0), (quadrant, 0), (0, quadrant), (quadrant, quadrant)][w % 4];
    (0..OPS_PER_WRITER)
        .map(|i| {
            let p = Point::new([
                ox + rng.gen_range(0..quadrant),
                oy + rng.gen_range(0..quadrant),
            ]);
            (p, (w * OPS_PER_WRITER + i) as u32)
        })
        .collect()
}

fn main() {
    let grid = Grid::<2>::new(GRID_K).unwrap();
    let z = ZCurve::over(grid);
    let store = ShardedSfcStore::with_memtable_capacity(z, WRITERS, MEMTABLE_CAP);
    store.set_traffic_sampling(64);
    let done = AtomicBool::new(false);
    let snapshots_taken = AtomicU64::new(0);
    let snapshot_records_seen = AtomicU64::new(0);

    println!(
        "concurrent ingest: {WRITERS} writers × {OPS_PER_WRITER} upserts into a {}×{} grid, \
         {WRITERS} shards, memtable cap {MEMTABLE_CAP}",
        grid.side(),
        grid.side()
    );

    let wall = Instant::now();
    let mut writer_secs = [0.0f64; WRITERS];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let store = &store;
                let ops = ops_of(grid, w);
                scope.spawn(move || {
                    let t = Instant::now();
                    for (p, v) in ops {
                        store.insert(p, v);
                    }
                    t.elapsed().as_secs_f64()
                })
            })
            .collect();
        // Live snapshot readers: freeze, verify, repeat — entirely
        // lock-free after each snapshot() returns.
        for _ in 0..2 {
            let store = &store;
            let done = &done;
            let taken = &snapshots_taken;
            let seen = &snapshot_records_seen;
            scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let snap = store.snapshot();
                    let entries: Vec<(u128, Point<2>, u32)> =
                        snap.iter().map(|e| (e.key, e.point, *e.payload)).collect();
                    assert_eq!(entries.len(), snap.len());
                    assert!(
                        entries.windows(2).all(|w| w[0].0 < w[1].0),
                        "snapshot keys out of order"
                    );
                    let b = BoxRegion::new(Point::new([100, 100]), Point::new([180, 160]));
                    let want: Vec<_> = entries
                        .iter()
                        .filter(|&&(_, p, _)| b.contains(&p))
                        .map(|&(k, p, v)| (k, p, v))
                        .collect();
                    let got: Vec<_> = snap
                        .query_box_par(&b)
                        .0
                        .iter()
                        .map(|e| (e.key, e.point, *e.payload))
                        .collect();
                    assert_eq!(got, want, "snapshot box query vs filtered iteration");
                    taken.fetch_add(1, Ordering::Relaxed);
                    seen.fetch_add(entries.len() as u64, Ordering::Relaxed);
                }
            });
        }
        for (w, h) in handles.into_iter().enumerate() {
            writer_secs[w] = h.join().expect("writer panicked");
        }
        done.store(true, Ordering::Relaxed);
    });
    let wall = wall.elapsed().as_secs_f64();

    let total_ops = (WRITERS * OPS_PER_WRITER) as f64;
    println!(
        "ingested {} upserts in {:.2}s wall — {:.0} upserts/s aggregate",
        total_ops as u64,
        wall,
        total_ops / wall
    );
    for (w, secs) in writer_secs.iter().enumerate() {
        println!(
            "  writer {w}: {OPS_PER_WRITER} upserts in {secs:.2}s ({:.0}/s)",
            OPS_PER_WRITER as f64 / secs
        );
    }
    for (j, (len, runs)) in store
        .shard_lens()
        .iter()
        .zip(store.shard_run_lens())
        .enumerate()
    {
        println!("  shard {j}: {len:>7} live | runs {runs:?}");
    }
    println!(
        "snapshot readers: {} consistent snapshots verified mid-flight ({} records walked)",
        snapshots_taken.load(Ordering::Relaxed),
        snapshot_records_seen.load(Ordering::Relaxed)
    );

    // Final verification: the concurrent run must equal a sequential
    // replay (writers own disjoint strips, so the result is
    // interleaving-free).
    let mut replay = SfcStore::with_memtable_capacity(z, MEMTABLE_CAP);
    for w in 0..WRITERS {
        for (p, v) in ops_of(grid, w) {
            replay.insert(p, v);
        }
    }
    assert_eq!(store.len(), replay.len(), "live count vs replay");
    let got: Vec<(u128, u32)> = store.iter().map(|e| (e.key, e.payload)).collect();
    let want: Vec<(u128, u32)> = replay.iter().map(|e| (e.key, *e.payload)).collect();
    assert_eq!(got, want, "concurrent result vs sequential replay");
    println!(
        "verified: {} live records byte-identical to the sequential replay",
        store.len()
    );
}
