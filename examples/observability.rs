//! Engine observability end to end: attach a metrics registry to a
//! *durable* sharded store, drive a mixed workload (skewed writes,
//! deletes, point gets, box queries, kNN, compaction, one rebalance)
//! with group-committed WAL appends and a background maintenance
//! thread, then read the engine back out three ways — the rendered text
//! report, the slow-query log with its recorded query plans, and the
//! flat JSON export the CI pipeline uploads as an artifact (now
//! including the `wal.*` and `engine.maintenance.*` series).
//!
//! ```text
//! cargo run --release -p sfc --example observability
//! ```
//!
//! Writes `METRICS_observability.json` into the current directory.

use rand::{Rng, SeedableRng};
use sfc::obs::fmt_ns;
use sfc::prelude::*;
use sfc::store::{MaintenanceConfig, ShardedSfcStore, WalConfig};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 4;
const WRITES: u32 = 60_000;
const DELETES: u32 = 4_000;
const GETS: u32 = 5_000;
const QUERIES: usize = 64;

fn main() {
    let grid = Grid::<2>::new(8).unwrap(); // 256×256
    let z = ZCurve::over(grid);
    let dir = std::env::temp_dir().join(format!("sfc-observability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store =
        ShardedSfcStore::open_durable(z, SHARDS, 512, WalConfig::new(&dir).fsync_every(512))
            .expect("open durable store");
    let metrics = store.enable_metrics();
    // A 200µs threshold catches the heavyweight queries of this workload
    // without admitting every memtable-only lookup.
    metrics.set_slow_query_threshold(Duration::from_micros(200));
    let store = Arc::new(store);
    // Flushes and compactions run off the write path while we ingest.
    store.start_maintenance(MaintenanceConfig::default());
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);

    // Mixed workload: 85% of writes land in the first Z quadrant, so the
    // per-shard counters show the skew the partition starts blind to.
    // Writes ride the group-commit queue without waiting (the committer
    // fsyncs batches behind them); one `sync()` barrier at the end makes
    // the whole stream durable.
    for i in 0..WRITES {
        let p = if i % 20 < 17 {
            Point::new([rng.gen_range(0..128u32), rng.gen_range(0..128u32)])
        } else {
            grid.random_cell(&mut rng)
        };
        store.insert_nosync(p, i);
    }
    for _ in 0..DELETES {
        store.delete_nosync(grid.random_cell(&mut rng));
    }
    store.sync().expect("durability barrier");
    for _ in 0..GETS {
        std::hint::black_box(store.get(grid.random_cell(&mut rng)));
    }
    let max = (grid.side() - 1) as u32;
    for _ in 0..QUERIES {
        let corner = grid.random_cell(&mut rng);
        let size = rng.gen_range(8..64u32);
        let b = BoxRegion::new(
            corner,
            Point::new([
                (corner.coord(0) + size).min(max),
                (corner.coord(1) + size).min(max),
            ]),
        );
        std::hint::black_box(store.query_box(&b).0.len());
        std::hint::black_box(store.knn(corner, 5, 8).0.len());
    }
    store.compact();
    store.rebalance(1e-9);
    store.stop_maintenance();

    // 1. The aligned text report: every counter, gauge, and histogram
    //    with its latency percentiles.
    println!("{}", metrics.registry().render());

    // 2. The slow-query log: each admitted query carries its plan (which
    //    per-level strategy ran where) and its work counters.
    let slow = metrics.slow_queries();
    println!(
        "slow queries over {}: {} admitted ({} seen)",
        fmt_ns(200_000),
        slow.len(),
        metrics.slow_queries_admitted()
    );
    for entry in slow.iter().take(5) {
        println!("  #{:<4} {}", entry.seq, entry.detail);
    }

    // 3. Engine-level derived numbers straight from the registry.
    let snap = metrics.registry().snapshot();
    let overscan = QueryStats::overscan_ratio(
        snap.counter("engine.query.scanned").unwrap_or(0),
        snap.counter("engine.query.reported").unwrap_or(0),
    );
    println!("engine overscan across all queries: {overscan:.3}");
    let shard_inserts: u64 = (0..SHARDS)
        .map(|j| snap.counter(&format!("shard{j}.insert.count")).unwrap())
        .sum();
    assert_eq!(shard_inserts, u64::from(WRITES), "lost an insert somewhere");
    assert_eq!(
        snap.counter("engine.rebalance.count"),
        Some(1),
        "the skewed workload must move boundaries exactly once"
    );

    // 4. The durability series: every acked record hit the log, and the
    //    committer amortised fsyncs across whole groups.
    let wal_records = snap.counter("wal.records").unwrap_or(0);
    let wal_groups = snap.counter("wal.groups").unwrap_or(0);
    assert_eq!(
        wal_records,
        u64::from(WRITES + DELETES),
        "every write must reach the WAL"
    );
    assert!(wal_groups > 0, "the committer must have fsynced groups");
    println!(
        "wal: {} records in {} group commits (mean group {:.1}), {} bytes, {} segments pruned",
        wal_records,
        wal_groups,
        wal_records as f64 / wal_groups as f64,
        snap.counter("wal.bytes").unwrap_or(0),
        snap.counter("wal.segments.pruned").unwrap_or(0),
    );
    println!(
        "maintenance: {} ticks, {} flushes, {} compactions",
        snap.counter("engine.maintenance.ticks").unwrap_or(0),
        snap.counter("engine.maintenance.flushes").unwrap_or(0),
        snap.counter("engine.maintenance.compactions").unwrap_or(0),
    );

    // 5. The JSON export CI uploads per commit.
    let path = "METRICS_observability.json";
    std::fs::write(path, snap.to_json()).expect("write metrics dump");
    println!("wrote {path}");
    drop(store); // clean shutdown drains the commit queue
    let _ = std::fs::remove_dir_all(&dir);
}
