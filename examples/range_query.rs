//! Spatial range queries over a curve-keyed table — the paper's database
//! motivation (Orenstein–Merrett / UB-tree style).
//!
//! Records live in a plain sorted array keyed by curve index. Box queries
//! run three ways: full scan, exact interval decomposition (any curve),
//! and BIGMIN jumping (Z curve, no preprocessing). The work counters show
//! how the curve's clustering quality becomes query cost.
//!
//! ```text
//! cargo run --release -p sfc --example range_query
//! ```

use rand::{Rng, SeedableRng};
use sfc::index::SfcIndex;
use sfc::metrics::report::{fmt_f64, Table};
use sfc::prelude::*;

fn main() {
    let grid = Grid::<2>::new(7).unwrap(); // 128×128
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let records: Vec<(Point<2>, u64)> = (0..30_000)
        .map(|i| (grid.random_cell(&mut rng), i))
        .collect();
    println!("30 000 records on a 128×128 grid; 200 random box queries\n");

    // Query workload: random boxes of side 4..24.
    let max = (grid.side() - 1) as u32;
    let boxes: Vec<BoxRegion<2>> = (0..200)
        .map(|_| {
            let corner = grid.random_cell(&mut rng);
            let size = rng.gen_range(4..24u32);
            BoxRegion::new(
                corner,
                Point::new([
                    (corner.coord(0) + size).min(max),
                    (corner.coord(1) + size).min(max),
                ]),
            )
        })
        .collect();

    let mut table = Table::new(
        "Interval-decomposed box queries (exact, zero overscan)",
        &["curve", "avg seeks", "avg hits", "hits/seek"],
    );
    for kind in CurveKind::ALL {
        let curve = kind.build::<2>(7).unwrap();
        let index = SfcIndex::build(&curve, records.clone());
        let (mut seeks, mut hits) = (0u64, 0u64);
        for b in &boxes {
            let (_, stats) = index.query_box_intervals(b);
            seeks += stats.seeks;
            hits += stats.reported;
        }
        table.push_row(vec![
            kind.name().to_string(),
            fmt_f64(seeks as f64 / boxes.len() as f64, 1),
            fmt_f64(hits as f64 / boxes.len() as f64, 1),
            fmt_f64(hits as f64 / seeks as f64, 2),
        ]);
    }
    println!("{}", table.render_text());

    // The Z curve's special power: BIGMIN needs no per-query O(volume)
    // preprocessing.
    let zindex = SfcIndex::build(ZCurve::over(grid), records.clone());
    let (mut scanned, mut seeks, mut hits) = (0u64, 0u64, 0u64);
    for b in &boxes {
        let (_, stats) = zindex.query_box_bigmin(b);
        scanned += stats.scanned;
        seeks += stats.seeks;
        hits += stats.reported;
    }
    let mut zt = Table::new(
        "Z curve with BIGMIN jumping (Tropf–Herzog)",
        &["avg scanned", "avg hits", "overscan", "avg seeks"],
    );
    zt.push_row(vec![
        fmt_f64(scanned as f64 / boxes.len() as f64, 1),
        fmt_f64(hits as f64 / boxes.len() as f64, 1),
        fmt_f64(QueryStats::overscan_ratio(scanned, hits), 3),
        fmt_f64(seeks as f64 / boxes.len() as f64, 1),
    ]);
    println!("{}", zt.render_text());

    // Exact verified kNN.
    let q = Point::new([64, 64]);
    let (nearest, stats) = zindex.knn(q, 5, 16);
    println!(
        "5 nearest records to {q} (scanned {} entries):",
        stats.scanned
    );
    for e in nearest {
        println!(
            "  record {:>6} at {}  (distance {:.2})",
            e.payload,
            e.point,
            q.euclidean(&e.point)
        );
    }
}
