//! The sharded store end to end: route skewed write traffic through a
//! keyspace-uniform partition, watch one shard absorb nearly all the
//! load, rebalance from the observed per-cell weights, and verify that a
//! snapshot keeps serving the pre-rebalance state while the writer moves
//! on.
//!
//! Every printed query result is cross-checked against a single
//! (unsharded) `SfcStore` fed the identical workload — the router and
//! fan-out must be invisible to readers.

use rand::{Rng, SeedableRng};
use sfc::prelude::*;
use sfc::store::{SfcStore, ShardedSfcStore};

fn shard_report(label: &str, store: &ShardedSfcStore<2, u32, ZCurve<2>>) {
    let lens = store.shard_lens();
    let total = store.len().max(1);
    println!("== {label}");
    println!("   boundaries: {:?}", store.partition().boundaries());
    for (j, (len, run_lens)) in lens.iter().zip(store.shard_run_lens()).enumerate() {
        println!(
            "   shard {j}: {len:>6} live ({:>2}%) | runs {run_lens:?}",
            100 * len / total,
        );
    }
}

fn main() {
    let grid = Grid::<2>::new(8).unwrap(); // 256×256
    let z = ZCurve::over(grid);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let sharded = ShardedSfcStore::with_memtable_capacity(z, 4, 512);
    let mut single = SfcStore::with_memtable_capacity(z, 512);

    // Phase 1: heavily skewed traffic — 85% of writes land in the first
    // Z quadrant (the first quarter of the keyspace).
    for i in 0..40_000u32 {
        let p = if i % 20 < 17 {
            Point::new([rng.gen_range(0..128u32), rng.gen_range(0..128u32)])
        } else {
            grid.random_cell(&mut rng)
        };
        sharded.insert(p, i);
        single.insert(p, i);
    }
    shard_report("after 40k skewed writes (uniform boundaries)", &sharded);

    // Readers see one store, not four: results are byte-identical.
    let b = BoxRegion::new(Point::new([40, 40]), Point::new([150, 110]));
    let hit_count = {
        let (hits, stats) = sharded.query_box_bigmin(&b);
        let (want, _) = single.query_box_bigmin(&b);
        assert_eq!(hits.len(), want.len());
        assert!(hits
            .iter()
            .zip(&want)
            .all(|(a, b)| (a.key, a.payload) == (b.key, *b.payload)));
        println!(
            "   box query: {} hits | seeks {} | scanned {} (identical to single store)",
            hits.len(),
            stats.seeks,
            stats.scanned
        );
        hits.len()
    };

    // Phase 2: freeze a snapshot, then rebalance from observed traffic.
    let frozen = sharded.snapshot();
    let changed = sharded.rebalance(1e-9);
    assert!(changed, "skewed traffic must move the boundaries");
    shard_report(
        "after rebalance(min-bottleneck over observed writes)",
        &sharded,
    );

    // Phase 3: the writer keeps going under the new boundaries …
    for i in 0..10_000u32 {
        let p = grid.random_cell(&mut rng);
        sharded.insert(p, 100_000 + i);
        single.insert(p, 100_000 + i);
    }
    // … while the snapshot still serves the pre-rebalance state.
    println!("== snapshot isolation");
    println!(
        "   snapshot: {} live (frozen) | store: {} live (moved on)",
        frozen.len(),
        sharded.len()
    );
    let (frozen_hits, _) = frozen.query_box_bigmin(&b);
    assert_eq!(frozen_hits.len(), hit_count, "snapshot drifted");
    println!(
        "   frozen box query still returns {} hits; live store now returns {}",
        frozen_hits.len(),
        sharded.query_box_bigmin(&b).0.len()
    );

    // Final cross-check on the live stores.
    let q = Point::new([100, 100]);
    let (sk, _) = sharded.knn(q, 8, 8);
    let (uk, _) = single.knn(q, 8, 8);
    assert!(sk
        .iter()
        .zip(&uk)
        .all(|(a, b)| (a.key, a.payload) == (b.key, *b.payload)));
    println!(
        "== kNN at {q}: {} neighbors, identical to single store",
        sk.len()
    );
}
