//! Survey the proximity-preservation of every curve family across grid
//! sizes — a compact reproduction of the paper's main narrative plus its
//! open Hilbert question.
//!
//! ```text
//! cargo run --release -p sfc --example stretch_survey
//! ```

use sfc::metrics::report::{fmt_f64, fmt_ratio, Table};
use sfc::metrics::{bounds, nn_stretch};
use sfc::prelude::*;

fn main() {
    let mut table = Table::new(
        "Average NN-stretch, normalized by the asymptote (1/d)·n^{1−1/d}  (d = 2)",
        &[
            "k",
            "n",
            "Thm1 bound/asym",
            "Z",
            "simple",
            "snake",
            "gray",
            "hilbert",
        ],
    );
    for k in 2..=8u32 {
        let asym = bounds::nn_stretch_asymptote(k, 2);
        let bound = bounds::thm1_nn_stretch_lower_bound(k, 2);
        let mut row = vec![
            k.to_string(),
            bounds::n_cells(k, 2).to_string(),
            fmt_ratio(bound / asym),
        ];
        for kind in CurveKind::ALL {
            let curve = kind.build::<2>(k).unwrap();
            let s = nn_stretch::summarize_par(&curve);
            row.push(fmt_ratio(s.d_avg() / asym));
        }
        table.push_row(row);
    }
    println!("{}", table.render_text());
    println!(
        "Reading: the bound column tends to 2/3 ≈ 0.667 (Theorem 1); Z and simple\n\
         tend to 1.0 (Theorems 2–3); Hilbert & friends stay Θ(1): nobody escapes\n\
         the n^(1-1/d) regime — the paper's negative result, measured.\n"
    );

    let mut dmax = Table::new(
        "Average-maximum NN-stretch D^max, same grids",
        &["k", "Z", "simple (= n^{1−1/d})", "hilbert"],
    );
    for k in 2..=8u32 {
        let z = nn_stretch::summarize_par(&ZCurve::<2>::new(k).unwrap());
        let s = nn_stretch::summarize_par(&SimpleCurve::<2>::new(k).unwrap());
        let h = nn_stretch::summarize_par(&HilbertCurve::<2>::new(k).unwrap());
        dmax.push_row(vec![
            k.to_string(),
            fmt_f64(z.d_max(), 2),
            fmt_f64(s.d_max(), 2),
            fmt_f64(h.d_max(), 2),
        ]);
    }
    println!("{}", dmax.render_text());
}
