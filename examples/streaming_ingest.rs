//! Streaming ingest into the mutable `SfcStore`: ingest → query → churn →
//! query → compact → query, printing the store shape and `QueryStats`
//! overscan after each phase.
//!
//! Watch two things: the run stack growing and collapsing as flushes and
//! size-tiered merges happen, and the per-query seek/scan counts dropping
//! back to single-index levels after a major compaction.

use rand::SeedableRng;
use sfc::prelude::*;
use sfc::store::SfcStore;

fn report(phase: &str, store: &SfcStore<2, u32, ZCurve<2>>, b: &BoxRegion<2>) {
    let (hits, stats) = store.query_box_bigmin(b);
    println!("== {phase}");
    println!(
        "   live {} | memtable {} | runs {:?}",
        store.len(),
        store.memtable_len(),
        store.run_lens()
    );
    let slots: usize = store.run_lens().iter().sum();
    let run_bytes: usize = store.run_heap_bytes().iter().sum();
    println!(
        "   footprint: per-level {:?} bytes = {run_bytes} total ({:.2} B/slot compressed)",
        store.run_heap_bytes(),
        if slots == 0 {
            0.0
        } else {
            run_bytes as f64 / slots as f64
        }
    );
    println!(
        "   box query: {} hits | seeks {} | scanned {} | overscan {:.2} | blocks decoded {}",
        hits.len(),
        stats.seeks,
        stats.scanned,
        stats.overscan(),
        stats.blocks_decoded
    );
}

fn main() {
    let grid = Grid::<2>::new(8).unwrap(); // 256×256
    let z = ZCurve::over(grid);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut store = SfcStore::with_memtable_capacity(z, 1_024);
    let b = BoxRegion::new(Point::new([40, 40]), Point::new([90, 110]));

    // Phase 1: stream an initial load through the memtable.
    for i in 0..30_000u32 {
        store.insert(grid.random_cell(&mut rng), i);
    }
    report("after streaming 30k inserts", &store, &b);

    // Phase 2: churn — a mix of updates and deletes.
    for i in 0..10_000u32 {
        let p = grid.random_cell(&mut rng);
        if i % 3 == 0 {
            store.delete(p);
        } else {
            store.insert(p, 100_000 + i);
        }
    }
    report("after 10k churn ops (1/3 deletes)", &store, &b);

    // Phase 3: major compaction folds every level into one run.
    store.compact();
    report("after compact()", &store, &b);

    // The merged view is a first-class static index too.
    let index = store.to_index();
    let (hits, _) = index.query_box_bigmin(&b);
    println!("== static index materialised from the store");
    println!("   {} records, box query {} hits", index.len(), hits.len());
}
