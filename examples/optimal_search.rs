//! Hunting for curves better than Z — the paper's open question, live.
//!
//! Theorem 1 says no bijection beats `(2/3d)·n^{1−1/d}`; Theorem 2 says Z
//! is within 1.5× of that. How much of the remaining 50% can a search
//! actually claw back? This example runs the exhaustive 2×2 search and
//! simulated annealing on larger grids, then draws the best curve found.
//!
//! ```text
//! cargo run --release -p sfc --example optimal_search
//! ```

use rand::SeedableRng;
use sfc::core::viz::render_traversal;
use sfc::metrics::optimal::{anneal, exhaustive_optimal, AnnealConfig};
use sfc::metrics::{bounds, nn_stretch};
use sfc::prelude::*;

fn main() {
    // Ground truth on the 2×2 grid: all 24 bijections.
    let opt = exhaustive_optimal(Grid::<2>::new(1).unwrap());
    println!(
        "2×2 exhaustive: optimum D^avg = {} over {} bijections ({} optima)\n\
         — Figure 1's π₁ (D^avg = 1.5) is optimal.\n",
        opt.d_avg(),
        opt.evaluated,
        opt.optima_count
    );

    // Annealing on 8×8 and 16×16.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2012);
    for k in [3u32, 4] {
        let side = 1u64 << k;
        let grid = Grid::<2>::new(k).unwrap();
        let z = nn_stretch::summarize_par(&ZCurve::<2>::new(k).unwrap());
        let bound = bounds::thm1_nn_stretch_lower_bound(k, 2);

        let start = PermutationCurve::identity(grid).unwrap();
        let t0 = std::time::Instant::now();
        let result = anneal(
            &start,
            AnnealConfig {
                iterations: 400_000,
                ..Default::default()
            },
            &mut rng,
        );
        println!(
            "{side}×{side}: best found D^avg = {:.4} vs Z = {:.4}, bound = {:.4}  \
             (ratio {:.4}, {} proposals in {:.2?})",
            result.d_avg(),
            z.d_avg(),
            bound,
            result.d_avg() / bound,
            result.evaluated,
            t0.elapsed()
        );

        if k == 3 {
            let drawing = render_traversal(&result.best);
            println!("\nbest 8×8 curve found:\n{drawing}");
        }
    }
    println!(
        "Observation: the search only shaves a few percent off Z — consistent\n\
         with the paper's 1.5-factor ceiling."
    );
}
