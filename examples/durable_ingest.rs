//! The durability loop end to end: open a write-ahead-logged store,
//! ingest a spatial stream with group commit (periodically flushing
//! part of it into immutable runs), then *simulate a crash* — the
//! committer is killed in place, exactly as if the process died — and
//! reopen the directory. Recovery loads the published runs, replays the
//! WAL tail, and the example verifies every acknowledged write came
//! back by checking the recovered store against an in-memory model.
//!
//! ```text
//! cargo run --release -p sfc --example durable_ingest
//! ```
//!
//! Prints the recovery breakdown: wall-clock time, records replayed
//! from the log vs records already covered by runs, and bytes scanned.

use rand::SeedableRng;
use sfc::prelude::*;
use sfc::store::{BatchOp, ShardedSfcStore, WalConfig};
use std::collections::BTreeMap;
use std::time::Instant;

const SHARDS: usize = 4;
const WRITES: u32 = 50_000;
const BATCHES: u32 = 100;
const BATCH_SIZE: u32 = 500;

fn main() {
    let grid = Grid::<2>::new(8).unwrap(); // 256×256
    let z = ZCurve::over(grid);
    let dir = std::env::temp_dir().join(format!("sfc-durable-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut model: BTreeMap<CurveIndex, (Point<2>, u32)> = BTreeMap::new();

    // Phase 1: durable ingest. Writes ride the group-commit queue
    // without waiting; each `sync()` is a durability barrier after which
    // everything before it is guaranteed on disk. Two mid-stream flushes
    // move the prefix into immutable run files and prune the log behind
    // them, so recovery has both forms to reassemble.
    {
        let store =
            ShardedSfcStore::open_durable(z, SHARDS, 1024, WalConfig::new(&dir).fsync_every(256))
                .expect("open fresh durable store");
        let t = Instant::now();
        for i in 0..WRITES {
            let p = grid.random_cell(&mut rng);
            if i % 10 == 9 {
                store.delete_nosync(p);
                model.remove(&z.index_of(p));
            } else {
                store.insert_nosync(p, i);
                model.insert(z.index_of(p), (p, i));
            }
            if i % 20_000 == 19_999 {
                store.flush(); // checkpoint: runs published, log pruned
            }
        }
        store.sync().expect("durability barrier");
        println!(
            "ingested {} ops ({} live) in {:.1?}",
            WRITES,
            store.len(),
            t.elapsed()
        );

        // Batched ingest: the same stream shape applied as whole
        // batches. Each `apply_batch_nosync` routes its ops under one
        // partition guard, applies every shard's slice under a single
        // memtable-lock hold, and logs the slice as one coalesced WAL
        // frame — one checksum and one commit-queue ticket instead of
        // `BATCH_SIZE` of each. The closing `sync()` barrier makes all
        // of it durable at once.
        let t = Instant::now();
        for b in 0..BATCHES {
            let ops: Vec<BatchOp<2, u32>> = (0..BATCH_SIZE)
                .map(|i| {
                    let p = grid.random_cell(&mut rng);
                    if i % 10 == 9 {
                        BatchOp::Delete(p)
                    } else {
                        BatchOp::Insert(p, WRITES + b * BATCH_SIZE + i)
                    }
                })
                .collect();
            store.apply_batch_nosync(&ops);
            // The model replays the batch in submission order — exactly
            // the contract `apply_batch` documents (last write to a cell
            // wins).
            for op in &ops {
                match *op {
                    BatchOp::Insert(p, v) => {
                        model.insert(z.index_of(p), (p, v));
                    }
                    BatchOp::Delete(p) => {
                        model.remove(&z.index_of(p));
                    }
                }
            }
        }
        store.sync().expect("durability barrier");
        println!(
            "batch-ingested {} ops in {} batches ({} live) in {:.1?}",
            BATCHES * BATCH_SIZE,
            BATCHES,
            store.len(),
            t.elapsed()
        );

        // Phase 2: die. No clean shutdown, no final flush — the commit
        // queue is torn down with whatever the group committer had
        // already made durable (which, after sync(), is everything).
        store.simulate_crash();
        println!("simulated crash (committer killed in place)");
    }

    // Phase 3: reopen and recover.
    let t = Instant::now();
    let store =
        ShardedSfcStore::open_durable(z, SHARDS, 1024, WalConfig::new(&dir).fsync_every(256))
            .expect("recover store");
    let stats = store.recovery_stats().expect("durable opens record stats");
    println!(
        "recovered in {:.1?} on {} replay thread(s): {} runs loaded, \
         {} records replayed from the wal, {} skipped (already in runs), \
         {} segments / {} bytes scanned, {} torn-tail bytes discarded",
        t.elapsed(),
        stats.replay_threads,
        stats.runs_loaded,
        stats.replayed_records,
        stats.skipped_records,
        stats.segments_scanned,
        stats.wal_bytes,
        stats.torn_tail_bytes,
    );
    for (j, s) in stats.shards.iter().enumerate() {
        println!(
            "  shard {j}: {} replayed, {} skipped, {} runs, {} wal bytes in {:.1?}",
            s.replayed_records, s.skipped_records, s.runs_loaded, s.wal_bytes, s.elapsed,
        );
    }

    // Phase 4: verify — the recovered state must be *exactly* the acked
    // stream, no more, no less.
    assert_eq!(store.len(), model.len(), "recovered count differs");
    for e in store.iter() {
        let (p, v) = model
            .get(&e.key)
            .unwrap_or_else(|| panic!("recovered a key never acked: {}", e.key));
        assert_eq!(
            (e.point, e.payload),
            (*p, *v),
            "payload mismatch at {}",
            e.key
        );
    }
    println!(
        "verified: recovered state matches the model exactly ({} entries)",
        model.len()
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
